"""Tests for per-machine location caches with lazy forwarding."""

import pytest

from repro import ClusterSpec, MachineSpec, Proclet, Quicksand
from repro import QuicksandConfig
from repro.units import GiB

from ..conftest import make_qs


class Echo(Proclet):
    def ping(self, ctx):
        yield ctx.cpu(1e-7)
        return ctx.machine.name


@pytest.fixture
def qs():
    return make_qs(machines=[
        MachineSpec(name="m0", cores=8, dram_bytes=4 * GiB),
        MachineSpec(name="m1", cores=8, dram_bytes=4 * GiB),
        MachineSpec(name="m2", cores=8, dram_bytes=4 * GiB),
    ], enable_local_scheduler=False, enable_global_scheduler=False,
        enable_split_merge=False)


class TestForwarding:
    def test_first_call_after_migration_pays_forwarding(self, qs):
        m0, m1, m2 = qs.machines
        ref = qs.spawn(Echo(), m1)
        # Prime m0's cache.
        qs.run(until_event=ref.call("ping", caller_machine=m0))
        assert qs.runtime.locator.forwarding_hops == 0
        # Move the proclet; m0's cache is now stale.
        qs.run(until_event=qs.runtime.migrate(ref.proclet, m2))
        t0 = qs.sim.now
        assert qs.run(until_event=ref.call("ping",
                                           caller_machine=m0)) == "m2"
        forwarded_time = qs.sim.now - t0
        assert qs.runtime.locator.forwarding_hops == 1
        # Second call uses the refreshed cache: no new hop, faster.
        t0 = qs.sim.now
        qs.run(until_event=ref.call("ping", caller_machine=m0))
        direct_time = qs.sim.now - t0
        assert qs.runtime.locator.forwarding_hops == 1
        assert forwarded_time > direct_time

    def test_local_call_after_proclet_moves_away(self, qs):
        """A caller colocated with the proclet believes it is local; when
        it moves away the 'local' call turns into a forwarded remote."""
        m0, m1, _m2 = qs.machines
        ref = qs.spawn(Echo(), m0)
        qs.run(until_event=ref.call("ping", caller_machine=m0))
        local_calls_before = qs.runtime.local_calls
        qs.run(until_event=qs.runtime.migrate(ref.proclet, m1))
        assert qs.run(until_event=ref.call("ping",
                                           caller_machine=m0)) == "m1"
        assert qs.runtime.locator.forwarding_hops == 1
        assert qs.runtime.local_calls == local_calls_before

    def test_each_machine_cache_is_independent(self, qs):
        m0, m1, m2 = qs.machines
        ref = qs.spawn(Echo(), m0)
        qs.run(until_event=ref.call("ping", caller_machine=m1))
        qs.run(until_event=ref.call("ping", caller_machine=m2))
        qs.run(until_event=qs.runtime.migrate(ref.proclet, m1))
        # Both m1 and m2 have stale caches; each pays one hop.
        qs.run(until_event=ref.call("ping", caller_machine=m1))
        qs.run(until_event=ref.call("ping", caller_machine=m2))
        assert qs.runtime.locator.forwarding_hops == 2

    def test_caching_disabled_never_forwards(self):
        from repro import Cluster, NuRuntime, symmetric_cluster

        cluster = Cluster(symmetric_cluster(2, cores=4, dram_bytes=GiB))
        rt = NuRuntime(cluster, location_caching=False)
        m0, m1 = cluster.machines
        ref = rt.spawn(Echo(), m0)
        rt.sim.run(until_event=ref.call("ping", caller_machine=m1))
        rt.sim.run(until_event=rt.migrate(ref.proclet, m1))
        rt.sim.run(until_event=ref.call("ping", caller_machine=m1))
        assert rt.locator.forwarding_hops == 0

    def test_destroy_clears_cache_entries(self, qs):
        m0, m1, _m2 = qs.machines
        ref = qs.spawn(Echo(), m1)
        qs.run(until_event=ref.call("ping", caller_machine=m0))
        qs.runtime.destroy(ref)
        assert ref.proclet_id not in qs.runtime.locator._caches
