"""Failure-injection tests: fail-stop machine loss semantics."""

import pytest

from repro import Proclet, Task
from repro.runtime import DeadProclet, MachineFailed

from ..conftest import make_qs


@pytest.fixture
def qs():
    return make_qs(enable_local_scheduler=False,
                   enable_global_scheduler=False,
                   enable_split_merge=False)


class Echo(Proclet):
    def ping(self, ctx):
        yield ctx.cpu(1e-6)
        return ctx.machine.name


class TestMachineFailure:
    def test_proclets_on_failed_machine_die(self, qs):
        m0, m1 = qs.machines
        victim = qs.spawn(Echo(), m0)
        survivor = qs.spawn(Echo(), m1)
        lost = qs.runtime.fail_machine(m0)
        assert victim.proclet_id in {p.id for p in lost}
        with pytest.raises(DeadProclet):
            qs.run(until_event=victim.call("ping"))
        # Isolation: the other machine is untouched.
        assert qs.run(until_event=survivor.call("ping")) == "m1"

    def test_dram_released_on_failure(self, qs):
        m0 = qs.machines[0]
        ref = qs.spawn_memory(machine=m0)
        qs.run(until_event=ref.call("mp_put", 0, 100 * 2**20, None))
        assert m0.memory.used > 0
        qs.runtime.fail_machine(m0)
        assert m0.memory.used == 0

    def test_inflight_work_fails_with_machine_failed(self, qs):
        m0 = qs.machines[0]
        ref = qs.spawn_compute(machine=m0)
        task = Task(work=10.0, done=qs.sim.event())
        ref.call("cp_submit", task)
        qs.run(until=0.01)
        qs.runtime.fail_machine(m0)
        qs.run(until=0.02)
        # The worker's CPU item failed; the worker process died with
        # MachineFailed (observable through the runtime's metrics).
        assert qs.metrics.counter("runtime.machine_failures").total == 1

    def test_caller_of_dying_proclet_sees_failure(self, qs):
        m0, m1 = qs.machines

        class Worker(Proclet):
            def slow(self, ctx):
                yield ctx.cpu(1.0)
                return "done"

        worker = qs.spawn(Worker(), m0)
        call = worker.call("slow", caller_machine=m1)
        qs.run(until=0.01)
        qs.runtime.fail_machine(m0)
        with pytest.raises(MachineFailed):
            qs.run(until_event=call)

    def test_blocked_invocations_fail_fast_after_failure(self, qs):
        """Calls gated behind a migration fail once the machine dies."""
        m0, m1 = qs.machines
        ref = qs.spawn_memory(machine=m0)
        qs.run(until_event=ref.call("mp_put", 0, 200 * 2**20, None))
        mig = qs.runtime.migrate(ref.proclet, m1)
        qs.run(until=qs.sim.now + 1e-4)  # migration mid-copy
        gated = ref.call("mp_get", 0)
        qs.runtime.fail_machine(m0)
        with pytest.raises((DeadProclet, MachineFailed)):
            qs.run(until_event=gated)

    def test_sharded_structure_survives_partial_loss(self, qs):
        """Shards on surviving machines keep serving (no replication —
        lost shards raise, like any fail-stop store)."""
        m0, m1 = qs.machines
        vec = qs.sharded_vector(name="v", initial_machine=m1)
        events = [vec.append(i, 1024) for i in range(10)]
        qs.run(until_event=qs.sim.all_of(events))
        qs.runtime.fail_machine(m0)  # no shards here; index on m1?
        # All elements on m1's shard still readable.
        for i in range(10):
            assert qs.run(until_event=vec.get(i)) == i

    def test_filler_on_other_machine_unaffected(self):
        from repro.apps import FillerApp

        qs = make_qs(enable_local_scheduler=False,
                     enable_global_scheduler=False,
                     enable_split_merge=False)
        m0, m1 = qs.machines
        filler = FillerApp(qs, proclets=4, machine=m1)
        qs.run(until=0.01)
        qs.runtime.fail_machine(m0)
        before = filler.units_done
        qs.run(until=0.05)
        assert filler.units_done > before


class TestPoolHealing:
    def test_pool_heals_after_machine_failure(self):
        from repro import Task

        qs = make_qs(enable_local_scheduler=False,
                     enable_global_scheduler=False,
                     enable_split_merge=False)
        m0, m1 = qs.machines
        pool = qs.compute_pool(initial_members=4)
        # Force some members onto each machine.
        qs.run(until=0.005)
        on_m0 = [r for r in pool.members if r.machine is m0]
        assert on_m0, "expected members on m0"
        qs.runtime.fail_machine(m0)
        replaced = pool.heal()
        assert replaced == len(on_m0)
        assert pool.size == 4
        # The healed pool executes work again.
        done = pool.run(0.01)
        qs.run(until_event=done)
        assert pool.total_done >= 1

    def test_heal_noop_when_healthy(self):
        qs = make_qs(enable_local_scheduler=False,
                     enable_global_scheduler=False,
                     enable_split_merge=False)
        pool = qs.compute_pool(initial_members=2)
        assert pool.heal() == 0
        assert pool.size == 2
