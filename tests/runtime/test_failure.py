"""Failure-injection tests: fail-stop machine loss semantics."""

import pytest

from repro import Proclet, Task
from repro.runtime import (
    DeadProclet,
    MachineFailed,
    MigrationFailed,
    ProcletLost,
    ProcletStatus,
)

from ..conftest import make_qs


@pytest.fixture
def qs():
    return make_qs(enable_local_scheduler=False,
                   enable_global_scheduler=False,
                   enable_split_merge=False)


class Echo(Proclet):
    def ping(self, ctx):
        yield ctx.cpu(1e-6)
        return ctx.machine.name


class TestMachineFailure:
    def test_proclets_on_failed_machine_die(self, qs):
        m0, m1 = qs.machines
        victim = qs.spawn(Echo(), m0)
        survivor = qs.spawn(Echo(), m1)
        lost = qs.runtime.fail_machine(m0)
        assert victim.proclet_id in {p.id for p in lost}
        with pytest.raises(DeadProclet):
            qs.run(until_event=victim.call("ping"))
        # Isolation: the other machine is untouched.
        assert qs.run(until_event=survivor.call("ping")) == "m1"

    def test_dram_released_on_failure(self, qs):
        m0 = qs.machines[0]
        ref = qs.spawn_memory(machine=m0)
        qs.run(until_event=ref.call("mp_put", 0, 100 * 2**20, None))
        assert m0.memory.used > 0
        qs.runtime.fail_machine(m0)
        assert m0.memory.used == 0

    def test_inflight_work_fails_with_machine_failed(self, qs):
        m0 = qs.machines[0]
        ref = qs.spawn_compute(machine=m0)
        task = Task(work=10.0, done=qs.sim.event())
        ref.call("cp_submit", task)
        qs.run(until=0.01)
        qs.runtime.fail_machine(m0)
        qs.run(until=0.02)
        # The worker's CPU item failed; the worker process died with
        # MachineFailed (observable through the runtime's metrics).
        assert qs.metrics.counter("runtime.machine_failures").total == 1

    def test_caller_of_dying_proclet_sees_failure(self, qs):
        m0, m1 = qs.machines

        class Worker(Proclet):
            def slow(self, ctx):
                yield ctx.cpu(1.0)
                return "done"

        worker = qs.spawn(Worker(), m0)
        call = worker.call("slow", caller_machine=m1)
        qs.run(until=0.01)
        qs.runtime.fail_machine(m0)
        with pytest.raises(MachineFailed):
            qs.run(until_event=call)

    def test_blocked_invocations_fail_fast_after_failure(self, qs):
        """Calls gated behind a migration fail once the machine dies."""
        m0, m1 = qs.machines
        ref = qs.spawn_memory(machine=m0)
        qs.run(until_event=ref.call("mp_put", 0, 200 * 2**20, None))
        mig = qs.runtime.migrate(ref.proclet, m1)
        qs.run(until=qs.sim.now + 1e-4)  # migration mid-copy
        gated = ref.call("mp_get", 0)
        qs.runtime.fail_machine(m0)
        with pytest.raises((DeadProclet, MachineFailed)):
            qs.run(until_event=gated)

    def test_sharded_structure_survives_partial_loss(self, qs):
        """Shards on surviving machines keep serving (no replication —
        lost shards raise, like any fail-stop store)."""
        m0, m1 = qs.machines
        vec = qs.sharded_vector(name="v", initial_machine=m1)
        events = [vec.append(i, 1024) for i in range(10)]
        qs.run(until_event=qs.sim.all_of(events))
        qs.runtime.fail_machine(m0)  # no shards here; index on m1?
        # All elements on m1's shard still readable.
        for i in range(10):
            assert qs.run(until_event=vec.get(i)) == i

    def test_filler_on_other_machine_unaffected(self):
        from repro.apps import FillerApp

        qs = make_qs(enable_local_scheduler=False,
                     enable_global_scheduler=False,
                     enable_split_merge=False)
        m0, m1 = qs.machines
        filler = FillerApp(qs, proclets=4, machine=m1)
        qs.run(until=0.01)
        qs.runtime.fail_machine(m0)
        before = filler.units_done
        qs.run(until=0.05)
        assert filler.units_done > before


class TestPoolHealing:
    def test_pool_heals_after_machine_failure(self):
        from repro import Task

        qs = make_qs(enable_local_scheduler=False,
                     enable_global_scheduler=False,
                     enable_split_merge=False)
        m0, m1 = qs.machines
        pool = qs.compute_pool(initial_members=4)
        # Force some members onto each machine.
        qs.run(until=0.005)
        on_m0 = [r for r in pool.members if r.machine is m0]
        assert on_m0, "expected members on m0"
        qs.runtime.fail_machine(m0)
        replaced = pool.heal()
        assert replaced == len(on_m0)
        assert pool.size == 4
        # The healed pool executes work again.
        done = pool.run(0.01)
        qs.run(until_event=done)
        assert pool.total_done >= 1

    def test_heal_noop_when_healthy(self):
        qs = make_qs(enable_local_scheduler=False,
                     enable_global_scheduler=False,
                     enable_split_merge=False)
        pool = qs.compute_pool(initial_members=2)
        assert pool.heal() == 0
        assert pool.size == 2

    def test_orphans_replaced_on_survivors_only(self):
        qs = make_qs(enable_local_scheduler=False,
                     enable_global_scheduler=False,
                     enable_split_merge=False)
        m0, m1 = qs.machines
        pool = qs.compute_pool(initial_members=4)
        qs.run(until=0.005)
        assert any(r.machine is m0 for r in pool.members)
        qs.runtime.fail_machine(m0)
        pool.heal()
        assert pool.size == 4
        assert all(r.machine is m1 for r in pool.members)


class TestProcletLost:
    """Refs to proclets that died with their machine raise a *typed*
    error, distinguishable from deliberate destruction."""

    @pytest.fixture
    def qs(self):
        return make_qs(enable_local_scheduler=False,
                       enable_global_scheduler=False,
                       enable_split_merge=False)

    def test_lookup_of_lost_proclet_raises_proclet_lost(self, qs):
        m0 = qs.machines[0]
        ref = qs.spawn(Echo(), m0)
        qs.runtime.fail_machine(m0)
        with pytest.raises(ProcletLost):
            qs.runtime.get_proclet(ref.proclet_id)
        with pytest.raises(ProcletLost):
            ref.proclet

    def test_call_on_lost_proclet_raises_proclet_lost(self, qs):
        m0 = qs.machines[0]
        ref = qs.spawn(Echo(), m0)
        qs.runtime.fail_machine(m0)
        with pytest.raises(ProcletLost):
            qs.run(until_event=ref.call("ping"))

    def test_proclet_lost_is_a_dead_proclet(self, qs):
        """Existing DeadProclet handlers keep working."""
        assert issubclass(ProcletLost, DeadProclet)

    def test_destroyed_proclet_stays_generic_dead(self, qs):
        ref = qs.spawn(Echo(), qs.machines[0])
        qs.runtime.destroy(ref)
        with pytest.raises(DeadProclet) as exc_info:
            qs.runtime.get_proclet(ref.proclet_id)
        assert not isinstance(exc_info.value, ProcletLost)


class TestMachineRestore:
    @pytest.fixture
    def qs(self):
        return make_qs(enable_local_scheduler=False,
                       enable_global_scheduler=False,
                       enable_split_merge=False)

    def test_down_machine_excluded_from_placement(self, qs):
        m0, m1 = qs.machines
        qs.runtime.fail_machine(m0)
        for _ in range(4):
            assert qs.spawn_memory().machine is m1
            assert qs.spawn_compute().machine is m1

    def test_spawn_on_down_machine_rejected(self, qs):
        m0 = qs.machines[0]
        qs.runtime.fail_machine(m0)
        with pytest.raises(MachineFailed):
            qs.spawn(Echo(), m0)

    def test_restore_rejoins_placement_empty(self, qs):
        m0, m1 = qs.machines
        ref = qs.spawn_memory(machine=m0)
        qs.run(until_event=ref.call("mp_put", 0, 100 * 2**20, None))
        qs.runtime.fail_machine(m0)
        qs.runtime.restore_machine(m0)
        assert m0.up
        assert m0.memory.used == 0.0
        assert m0.cpu.cores == m1.cpu.cores
        # Placement prefers the now-empty machine for memory.
        assert qs.spawn_memory().machine is m0
        # ...and it serves calls again.
        spawned = qs.spawn(Echo(), m0)
        assert qs.run(until_event=spawned.call("ping")) == "m0"

    def test_fail_and_restore_are_idempotent(self, qs):
        m0 = qs.machines[0]
        qs.spawn(Echo(), m0)
        assert len(qs.runtime.fail_machine(m0)) == 1
        assert qs.runtime.fail_machine(m0) == []  # second: no-op
        qs.runtime.restore_machine(m0)
        qs.runtime.restore_machine(m0)  # no-op
        assert m0.up
        assert qs.metrics.counter("runtime.machine_failures").total == 1
        assert qs.metrics.counter("runtime.machine_restores").total == 1

    def test_lost_proclets_stay_dead_after_restore(self, qs):
        m0 = qs.machines[0]
        ref = qs.spawn(Echo(), m0)
        qs.runtime.fail_machine(m0)
        qs.runtime.restore_machine(m0)
        with pytest.raises(ProcletLost):
            ref.proclet


class TestMigrationTargetingDeadMachine:
    @pytest.fixture
    def qs(self):
        return make_qs(enable_local_scheduler=False,
                       enable_global_scheduler=False,
                       enable_split_merge=False)

    def test_migration_to_down_machine_fails_immediately(self, qs):
        m0, m1 = qs.machines
        ref = qs.spawn_memory(machine=m0)
        qs.runtime.fail_machine(m1)
        with pytest.raises(MigrationFailed):
            qs.run(until_event=qs.runtime.migrate(ref.proclet, m1))
        assert ref.proclet.status is ProcletStatus.RUNNING
        assert ref.machine is m0

    def test_inflight_migration_aborts_when_destination_dies(self, qs):
        m0, m1 = qs.machines
        ref = qs.spawn_memory(machine=m0)
        qs.run(until_event=ref.call("mp_put", 0, 200 * 2**20, None))
        mig = qs.runtime.migrate(ref.proclet, m1)
        qs.run(until=qs.sim.now + 1e-4)  # copy is in flight
        qs.runtime.fail_machine(m1)
        with pytest.raises(MigrationFailed):
            qs.run(until_event=mig)
        # The proclet reopened at the source and still serves.
        p = ref.proclet
        assert p.machine is m0
        assert p.status is ProcletStatus.RUNNING
        assert qs.runtime.migration.inflight_reserved_on(m1) == 0.0
        qs.run(until_event=ref.call("mp_contains", 0))

    def test_destination_reservation_not_leaked_across_restart(self, qs):
        """A reservation made before the destination crashed must not be
        double-released against the restarted (wiped) DRAM."""
        m0, m1 = qs.machines
        ref = qs.spawn_memory(machine=m0)
        qs.run(until_event=ref.call("mp_put", 0, 200 * 2**20, None))
        mig = qs.runtime.migrate(ref.proclet, m1)
        qs.run(until=qs.sim.now + 1e-4)
        qs.runtime.fail_machine(m1)
        qs.runtime.restore_machine(m1)  # restart before the abort lands
        with pytest.raises(MigrationFailed):
            qs.run(until_event=mig)
        assert m1.memory.used == 0.0  # nothing released into the void

    def test_source_death_kills_migrating_proclet(self, qs):
        m0, m1 = qs.machines
        ref = qs.spawn_memory(machine=m0)
        qs.run(until_event=ref.call("mp_put", 0, 200 * 2**20, None))
        mig = qs.runtime.migrate(ref.proclet, m1)
        qs.run(until=qs.sim.now + 1e-4)
        qs.runtime.fail_machine(m0)
        with pytest.raises((MigrationFailed, MachineFailed)):
            qs.run(until_event=mig)
        with pytest.raises(ProcletLost):
            ref.proclet
        # The destination-side reservation was returned.
        assert qs.runtime.migration.inflight_reserved_on(m1) == 0.0
