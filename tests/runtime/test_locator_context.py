"""Unit tests for the locator and execution contexts."""

import pytest

from repro import Proclet
from repro.runtime import Locator

from ..conftest import make_qs


@pytest.fixture
def qs():
    return make_qs(enable_local_scheduler=False,
                   enable_global_scheduler=False,
                   enable_split_merge=False)


class TestLocator:
    def test_place_lookup_move_remove(self, qs):
        loc = Locator()
        m0, m1 = qs.machines
        loc.place(1, m0)
        assert loc.lookup(1) is m0
        assert loc.proclets_on(m0) == [1]
        loc.move(1, m1)
        assert loc.lookup(1) is m1
        assert loc.proclets_on(m0) == []
        assert loc.proclets_on(m1) == [1]
        loc.remove(1)
        assert len(loc) == 0

    def test_double_place_rejected(self, qs):
        loc = Locator()
        loc.place(1, qs.machines[0])
        with pytest.raises(ValueError):
            loc.place(1, qs.machines[1])

    def test_lookup_missing_raises(self):
        with pytest.raises(KeyError):
            Locator().lookup(42)

    def test_proclets_on_sorted(self, qs):
        loc = Locator()
        for pid in (5, 1, 3):
            loc.place(pid, qs.machines[0])
        assert loc.proclets_on(qs.machines[0]) == [1, 3, 5]


class TestContext:
    def test_ctx_machine_tracks_migration(self, qs):
        m0, m1 = qs.machines
        observed = []

        class Mover(Proclet):
            def watch(self, ctx):
                observed.append(ctx.machine.name)
                yield ctx.sleep(0.050)
                observed.append(ctx.machine.name)

        ref = qs.spawn(Mover(), m0)
        done = ref.call("watch")
        qs.run(until=0.010)
        qs.run(until_event=qs.runtime.migrate(ref.proclet, m1))
        qs.run(until_event=done)
        assert observed == ["m0", "m1"]

    def test_ctx_alloc_free(self, qs):
        class Alloc(Proclet):
            def work(self, ctx):
                ctx.alloc(1024)
                yield ctx.cpu(1e-6)
                ctx.free(512)

        ref = qs.spawn(Alloc(), qs.machines[0])
        qs.run(until_event=ref.call("work"))
        assert ref.proclet.heap_bytes == 512

    def test_ctx_send_charges_fabric(self, qs):
        m0, m1 = qs.machines
        nbytes = 50 * 2**20

        class Sender(Proclet):
            def send(self, ctx, dst):
                yield ctx.send(dst, nbytes)

        ref = qs.spawn(Sender(), m0)
        t0 = qs.sim.now
        qs.run(until_event=ref.call("send", m1))
        assert qs.sim.now - t0 >= nbytes / m0.nic.bandwidth

    def test_ctx_rng_is_seeded_stream(self, qs):
        class R(Proclet):
            def draw(self, ctx):
                yield ctx.cpu(1e-9)
                return ctx.rng("mystream").random()

        ref = qs.spawn(R(), qs.machines[0])
        a = qs.run(until_event=ref.call("draw"))
        assert isinstance(a, float)

    def test_nested_calls_compose(self, qs):
        m0, m1 = qs.machines

        class Leaf(Proclet):
            def double(self, ctx, x):
                yield ctx.cpu(1e-6)
                return 2 * x

        class Branch(Proclet):
            def compute(self, ctx, leaf, x):
                y = yield ctx.call(leaf, "double", x)
                z = yield ctx.call(leaf, "double", y)
                return z

        leaf = qs.spawn(Leaf(), m1)
        branch = qs.spawn(Branch(), m0)
        result = qs.run(until_event=branch.call("compute", leaf, 5))
        assert result == 20
        assert qs.runtime.remote_calls >= 2
