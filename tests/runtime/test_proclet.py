"""Unit tests for proclet spawn, heap accounting, and invocation."""

import pytest

from repro.cluster import Cluster, OutOfMemory, symmetric_cluster
from repro.runtime import (
    DeadProclet,
    NuRuntime,
    Payload,
    Proclet,
    ProcletStatus,
    UnknownMethod,
)
from repro.units import GiB, KiB, MiB


class Counter(Proclet):
    def __init__(self):
        super().__init__()
        self.value = 0

    def increment(self, ctx, amount=1):
        yield ctx.cpu(1e-6)
        self.value += amount
        return self.value

    def get(self, ctx):
        return self.value  # plain method, no generator

    def read_blob(self, ctx, nbytes):
        yield ctx.cpu(1e-7)
        return Payload(b"", nbytes=nbytes)

    def store(self, ctx, nbytes):
        yield ctx.cpu(1e-7)
        ctx.alloc(nbytes)


@pytest.fixture
def rt():
    cluster = Cluster(symmetric_cluster(2, cores=8, dram_bytes=2 * GiB))
    return NuRuntime(cluster)


class TestSpawn:
    def test_spawn_assigns_identity_and_charges_memory(self, rt):
        m = rt.cluster.machine(0)
        free_before = m.memory.free
        ref = rt.spawn(Counter(), m, name="c")
        p = ref.proclet
        assert p.id == 0
        assert p.name == "c"
        assert p.machine is m
        assert p.status is ProcletStatus.RUNNING
        assert m.memory.free == free_before - Proclet.BASE_FOOTPRINT
        assert rt.proclet_count == 1

    def test_double_spawn_rejected(self, rt):
        p = Counter()
        rt.spawn(p, rt.cluster.machine(0))
        with pytest.raises(ValueError):
            rt.spawn(p, rt.cluster.machine(1))

    def test_spawn_oom(self, rt):
        m = rt.cluster.machine(0)
        m.memory.reserve(m.memory.free)
        with pytest.raises(OutOfMemory):
            rt.spawn(Counter(), m)

    def test_on_start_hook_runs(self, rt):
        class Starter(Proclet):
            def __init__(self):
                super().__init__()
                self.started_at = None

            def on_start(self, ctx):
                yield ctx.cpu(1e-6)
                self.started_at = ctx.now

        ref = rt.spawn(Starter(), rt.cluster.machine(0))
        rt.sim.run(until=1.0)
        assert ref.proclet.started_at is not None

    def test_proclets_on(self, rt):
        m0, m1 = rt.cluster.machines
        rt.spawn(Counter(), m0)
        rt.spawn(Counter(), m0)
        rt.spawn(Counter(), m1)
        assert len(rt.proclets_on(m0)) == 2
        assert len(rt.proclets_on(m1)) == 1


class TestHeap:
    def test_alloc_and_free_charge_machine(self, rt):
        m = rt.cluster.machine(0)
        ref = rt.spawn(Counter(), m)
        p = ref.proclet
        p.heap_alloc(10 * MiB)
        assert p.heap_bytes == 10 * MiB
        assert p.footprint == 10 * MiB + Proclet.BASE_FOOTPRINT
        p.heap_free(4 * MiB)
        assert p.heap_bytes == 6 * MiB

    def test_over_free_rejected(self, rt):
        ref = rt.spawn(Counter(), rt.cluster.machine(0))
        with pytest.raises(ValueError):
            ref.proclet.heap_free(1.0)

    def test_alloc_before_spawn_rejected(self):
        p = Counter()
        with pytest.raises(RuntimeError):
            p.heap_alloc(100)

    def test_heap_change_listener(self, rt):
        seen = []
        rt.on_heap_change(lambda p: seen.append(p.heap_bytes))
        ref = rt.spawn(Counter(), rt.cluster.machine(0))
        ref.proclet.heap_alloc(1 * KiB)
        assert seen == [1 * KiB]


class TestInvoke:
    def test_local_invocation_returns_value(self, rt):
        m = rt.cluster.machine(0)
        ref = rt.spawn(Counter(), m)
        ev = ref.call("increment", 5, caller_machine=m)
        result = rt.sim.run(until_event=ev)
        assert result == 5
        assert rt.local_calls >= 1
        assert rt.remote_calls == 0

    def test_plain_method_works(self, rt):
        ref = rt.spawn(Counter(), rt.cluster.machine(0))
        rt.sim.run(until_event=ref.call("increment", 3))
        v = rt.sim.run(until_event=ref.call("get"))
        assert v == 3

    def test_remote_invocation_charges_rpc(self, rt):
        m0, m1 = rt.cluster.machines
        ref = rt.spawn(Counter(), m1)
        ev = ref.call("increment", caller_machine=m0)
        rt.sim.run(until_event=ev)
        assert rt.remote_calls == 1
        # round trip is at least 2x one-way latency
        assert rt.sim.now >= 2 * rt.cluster.spec.network.latency

    def test_remote_is_slower_than_local(self, rt):
        m0, m1 = rt.cluster.machines
        ref = rt.spawn(Counter(), m0)
        t0 = rt.sim.now
        rt.sim.run(until_event=ref.call("increment", caller_machine=m0))
        local_time = rt.sim.now - t0
        t0 = rt.sim.now
        rt.sim.run(until_event=ref.call("increment", caller_machine=m1))
        remote_time = rt.sim.now - t0
        assert remote_time > local_time * 5

    def test_payload_response_charges_bandwidth(self, rt):
        m0, m1 = rt.cluster.machines
        ref = rt.spawn(Counter(), m1)
        nbytes = 100 * MiB
        t0 = rt.sim.now
        rt.sim.run(until_event=ref.call("read_blob", nbytes,
                                        caller_machine=m0))
        elapsed = rt.sim.now - t0
        assert elapsed >= nbytes / m1.nic.bandwidth

    def test_payload_free_for_local_caller(self, rt):
        m1 = rt.cluster.machine(1)
        ref = rt.spawn(Counter(), m1)
        t0 = rt.sim.now
        rt.sim.run(until_event=ref.call("read_blob", 100 * MiB,
                                        caller_machine=m1))
        assert rt.sim.now - t0 < 1e-3

    def test_req_bytes_charged_for_remote_writes(self, rt):
        m0, m1 = rt.cluster.machines
        ref = rt.spawn(Counter(), m1)
        nbytes = 50 * MiB
        t0 = rt.sim.now
        rt.sim.run(until_event=ref.call("store", nbytes,
                                        caller_machine=m0,
                                        req_bytes=nbytes))
        assert rt.sim.now - t0 >= nbytes / m0.nic.bandwidth

    def test_unknown_method_fails(self, rt):
        ref = rt.spawn(Counter(), rt.cluster.machine(0))
        ev = ref.call("nonexistent")
        with pytest.raises(UnknownMethod):
            rt.sim.run(until_event=ev)

    def test_method_cpu_contention_slows_execution(self, rt):
        m = rt.cluster.machine(0)
        from repro.cluster import Priority
        m.cpu.hold(threads=8.0, priority=Priority.HIGH)

        class Worker(Proclet):
            def work(self, ctx):
                yield ctx.cpu(0.001)
                return "done"

        ref = rt.spawn(Worker(), m)
        ev = ref.call("work", caller_machine=m)
        rt.sim.run(until=0.5)
        assert not ev.triggered  # starved by the HIGH hold


class TestDestroy:
    def test_destroy_releases_memory(self, rt):
        m = rt.cluster.machine(0)
        free0 = m.memory.free
        ref = rt.spawn(Counter(), m)
        ref.proclet.heap_alloc(1 * MiB)
        rt.destroy(ref)
        assert m.memory.free == free0
        assert rt.proclet_count == 0

    def test_call_after_destroy_fails(self, rt):
        ref = rt.spawn(Counter(), rt.cluster.machine(0))
        rt.destroy(ref)
        ev = ref.call("increment")
        with pytest.raises(DeadProclet):
            rt.sim.run(until_event=ev)

    def test_double_destroy_is_noop(self, rt):
        ref = rt.spawn(Counter(), rt.cluster.machine(0))
        rt.destroy(ref)
        rt.destroy(ref)


class TestRef:
    def test_ref_equality_and_hash(self, rt):
        from repro.runtime import ProcletRef

        ref = rt.spawn(Counter(), rt.cluster.machine(0))
        same = ProcletRef(rt, ref.proclet_id, "alias")
        assert ref == same
        assert hash(ref) == hash(same)

    def test_ref_machine_tracks_location(self, rt):
        m0 = rt.cluster.machine(0)
        ref = rt.spawn(Counter(), m0)
        assert ref.machine is m0
