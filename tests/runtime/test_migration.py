"""Tests for the proclet migration mechanism — the heart of fungibility."""

import pytest

from repro.cluster import (
    Cluster,
    ClusterSpec,
    MachineSpec,
    Priority,
    symmetric_cluster,
)
from repro.runtime import (
    MigrationConfig,
    MigrationFailed,
    NuRuntime,
    Proclet,
    ProcletStatus,
)
from repro.units import GiB, MS, MiB


class Holder(Proclet):
    def __init__(self, heap=0):
        super().__init__()
        self._initial = heap

    def on_start(self, ctx):
        if self._initial:
            ctx.alloc(self._initial)

    def ping(self, ctx):
        yield ctx.cpu(1e-7)
        return ctx.machine.name

    def long_work(self, ctx, seconds):
        yield ctx.cpu(seconds)
        return ctx.machine.name


@pytest.fixture
def rt():
    cluster = Cluster(symmetric_cluster(2, cores=8, dram_bytes=4 * GiB))
    return NuRuntime(cluster)


class TestBasicMigration:
    def test_migrate_moves_proclet_and_memory(self, rt):
        m0, m1 = rt.cluster.machines
        ref = rt.spawn(Holder(heap=10 * MiB), m0)
        rt.sim.run(until=0.001)
        used0 = m0.memory.used
        ev = rt.migrate(ref, m1)
        latency = rt.sim.run(until_event=ev)
        p = ref.proclet
        assert p.machine is m1
        assert ref.machine is m1
        assert m0.memory.used == pytest.approx(used0 - p.footprint)
        assert m1.memory.used >= p.footprint
        assert p.migrations == 1
        assert latency > 0

    def test_10mib_proclet_migrates_in_about_1ms(self, rt):
        """Calibration check against Nu's published number (§2)."""
        m0, m1 = rt.cluster.machines
        ref = rt.spawn(Holder(heap=10 * MiB), m0)
        rt.sim.run(until=0.001)
        latency = rt.sim.run(until_event=rt.migrate(ref, m1))
        assert 0.5 * MS < latency < 3 * MS

    def test_small_proclet_migrates_submillisecond(self, rt):
        """Fig. 1's claim: filler proclets with small state move <1ms."""
        m0, m1 = rt.cluster.machines
        ref = rt.spawn(Holder(heap=64 * 1024), m0)
        rt.sim.run(until=0.001)
        latency = rt.sim.run(until_event=rt.migrate(ref, m1))
        assert latency < 1 * MS

    def test_migrate_to_same_machine_is_noop(self, rt):
        m0 = rt.cluster.machine(0)
        ref = rt.spawn(Holder(), m0)
        latency = rt.sim.run(until_event=rt.migrate(ref, m0))
        assert latency == 0.0
        assert ref.proclet.migrations == 0

    def test_migration_latency_scales_with_heap(self, rt):
        m0, m1 = rt.cluster.machines

        def migrate_with_heap(heap):
            ref = rt.spawn(Holder(heap=heap), m0)
            rt.sim.run(until=rt.sim.now + 0.001)
            lat = rt.sim.run(until_event=rt.migrate(ref, m1))
            rt.sim.run(until_event=rt.migrate(ref, m0))  # move back
            rt.destroy(ref)
            return lat

        small = migrate_with_heap(1 * MiB)
        large = migrate_with_heap(100 * MiB)
        assert large > small * 10

    def test_on_migrated_hook(self, rt):
        m0, m1 = rt.cluster.machines
        calls = []

        class Hooked(Proclet):
            def on_migrated(self, src, dst):
                calls.append((src.name, dst.name))

        ref = rt.spawn(Hooked(), m0)
        rt.sim.run(until_event=rt.migrate(ref, m1))
        assert calls == [("m0", "m1")]


class TestMigrationSemantics:
    def test_invocations_block_during_migration(self, rt):
        m0, m1 = rt.cluster.machines
        ref = rt.spawn(Holder(heap=200 * MiB), m0)
        rt.sim.run(until=0.001)
        mig = rt.migrate(ref, m1)
        rt.sim.run(until=0.0015)  # migration is now in flight
        assert ref.proclet.status is ProcletStatus.MIGRATING
        call = ref.call("ping")
        rt.sim.run(until=0.003)
        assert not call.triggered  # still gated
        result = rt.sim.run(until_event=call)
        assert result == "m1"  # executed at the destination
        assert mig.triggered

    def test_inflight_cpu_work_follows_the_proclet(self, rt):
        """A thread mid-computation pauses, moves, and finishes remotely."""
        m0, m1 = rt.cluster.machines
        ref = rt.spawn(Holder(), m0)
        call = ref.call("long_work", 0.050, caller_machine=m0)
        rt.sim.run(until=0.010)  # 10ms of 50ms done
        rt.sim.run(until_event=rt.migrate(ref, m1))
        result = rt.sim.run(until_event=call)
        assert result == "m1"
        # Total time ~ 50ms work + migration pause; well under 2x.
        assert rt.sim.now < 0.1

    def test_work_is_not_lost_nor_duplicated(self, rt):
        m0, m1 = rt.cluster.machines
        ref = rt.spawn(Holder(), m0)
        call = ref.call("long_work", 0.050, caller_machine=m0)
        rt.sim.run(until=0.030)
        mig_latency = rt.sim.run(until_event=rt.migrate(ref, m1))
        rt.sim.run(until_event=call)
        # 50ms of work + migration stall, not 80ms (restart) and
        # not 50ms-minus-stall (free progress while paused).
        expected = 0.050 + mig_latency
        assert rt.sim.now == pytest.approx(expected, abs=2e-4)

    def test_migrating_twice_concurrently_fails(self, rt):
        m0, m1 = rt.cluster.machines
        ref = rt.spawn(Holder(heap=100 * MiB), m0)
        rt.sim.run(until=0.001)
        rt.migrate(ref, m1)
        rt.sim.run(until=0.0012)
        second = rt.migrate(ref, m1)
        with pytest.raises(MigrationFailed):
            rt.sim.run(until_event=second)

    def test_migration_to_full_machine_aborts_cleanly(self):
        spec = ClusterSpec(machines=[
            MachineSpec(name="big", cores=8, dram_bytes=4 * GiB),
            MachineSpec(name="tiny", cores=8, dram_bytes=1 * MiB),
        ])
        rt = NuRuntime(Cluster(spec))
        big, tiny = rt.cluster.machines
        ref = rt.spawn(Holder(heap=100 * MiB), big)
        rt.sim.run(until=0.001)
        ev = rt.migrate(ref, tiny)
        with pytest.raises(MigrationFailed):
            rt.sim.run(until_event=ev)
        p = ref.proclet
        assert p.machine is big
        assert p.status is ProcletStatus.RUNNING
        # and it still serves calls
        result = rt.sim.run(until_event=ref.call("ping"))
        assert result == "big"

    def test_migration_metrics_recorded(self, rt):
        m0, m1 = rt.cluster.machines
        ref = rt.spawn(Holder(heap=1 * MiB), m0)
        rt.sim.run(until=0.001)
        rt.sim.run(until_event=rt.migrate(ref, m1))
        lats = rt.metrics.samples("runtime.migration.latency")
        assert len(lats) == 1
        assert rt.migration.migrations_completed == 1


class TestMigrationUnderContention:
    def test_migration_shares_nic_bandwidth(self, rt):
        m0, m1 = rt.cluster.machines
        # Saturate m0's NIC with a competing transfer.
        rt.fabric.transfer(m0, m1, int(0.1 * m0.nic.bandwidth))
        ref = rt.spawn(Holder(heap=100 * MiB), m0)
        rt.sim.run(until=0.001)
        lat = rt.sim.run(until_event=rt.migrate(ref, m1))
        alone = (ref.proclet.footprint / m0.nic.bandwidth)
        assert lat > alone  # slowed by the contending transfer

    def test_custom_migration_config(self):
        cluster = Cluster(symmetric_cluster(2, cores=4, dram_bytes=GiB))
        rt = NuRuntime(cluster, MigrationConfig(fixed_overhead=0.01,
                                                resume_overhead=0.01))
        m0, m1 = rt.cluster.machines
        ref = rt.spawn(Holder(), m0)
        lat = rt.sim.run(until_event=rt.migrate(ref, m1))
        assert lat >= 0.02

    def test_bad_migration_config(self):
        with pytest.raises(ValueError):
            MigrationConfig(fixed_overhead=-1.0)


class TestMigrationRetry:
    """Transient destination failures back off and retry before the
    migration surfaces MigrationFailed (regression: the engine used to
    give up on the first OutOfMemory)."""

    def two_machines(self, **config_kwargs):
        cluster = Cluster(symmetric_cluster(2, cores=8, dram_bytes=GiB))
        return NuRuntime(cluster, MigrationConfig(**config_kwargs))

    def test_transient_oom_retries_then_succeeds(self):
        rt = self.two_machines()
        m0, m1 = rt.cluster.machines
        ref = rt.spawn(Holder(heap=100 * MiB), m0)
        rt.sim.run(until=0.001)
        # Fill the destination so the first reservation attempts fail...
        m1.memory.set_ballast(m1.memory.capacity - 50 * MiB)
        mig = rt.migrate(ref, m1)
        # ...and free it between the first and the last retry (default
        # backoff: attempts at +0, +200us, +600us).
        rt.sim.call_in(0.0003, m1.memory.set_ballast, 0.0)
        rt.sim.run(until_event=mig)
        assert ref.machine is m1
        assert rt.migration.migrations_retried >= 1
        assert rt.migration.migrations_completed == 1
        assert rt.migration.migrations_failed == 0
        assert rt.metrics.counter("runtime.migration.retries").total >= 1

    def test_persistent_oom_fails_after_max_retries(self):
        rt = self.two_machines(max_retries=2)
        m0, m1 = rt.cluster.machines
        ref = rt.spawn(Holder(heap=100 * MiB), m0)
        rt.sim.run(until=0.001)
        m1.memory.set_ballast(m1.memory.capacity)  # never freed
        with pytest.raises(MigrationFailed):
            rt.sim.run(until_event=rt.migrate(ref, m1))
        assert rt.migration.migrations_retried == 2
        assert rt.migration.migrations_failed == 1
        # Clean abort: proclet serves again from the source.
        p = ref.proclet
        assert p.machine is m0
        assert p.status is ProcletStatus.RUNNING
        assert rt.sim.run(until_event=ref.call("ping")) == "m0"

    def test_zero_retries_fails_on_first_transient(self):
        rt = self.two_machines(max_retries=0)
        m0, m1 = rt.cluster.machines
        ref = rt.spawn(Holder(heap=100 * MiB), m0)
        rt.sim.run(until=0.001)
        m1.memory.set_ballast(m1.memory.capacity)
        with pytest.raises(MigrationFailed):
            rt.sim.run(until_event=rt.migrate(ref, m1))
        assert rt.migration.migrations_retried == 0

    def test_backoff_is_exponential(self):
        rt = self.two_machines(max_retries=3, retry_backoff=0.001,
                               backoff_multiplier=2.0)
        m0, m1 = rt.cluster.machines
        ref = rt.spawn(Holder(heap=100 * MiB), m0)
        rt.sim.run(until=0.001)
        t0 = rt.sim.now
        m1.memory.set_ballast(m1.memory.capacity)
        with pytest.raises(MigrationFailed):
            rt.sim.run(until_event=rt.migrate(ref, m1))
        # Attempts at +0, +1ms, +3ms, +7ms: failure lands at t0 + 7ms.
        assert rt.sim.now == pytest.approx(t0 + 0.007, abs=1e-6)

    def test_fault_hook_injects_transient_failures(self):
        rt = self.two_machines()
        m0, m1 = rt.cluster.machines
        flips = []

        def flaky_twice(proclet, dst):
            flips.append((proclet.name, dst.name))
            return len(flips) <= 2

        rt.migration.fault_hook = flaky_twice
        ref = rt.spawn(Holder(heap=10 * MiB), m0)
        rt.sim.run(until=0.001)
        rt.sim.run(until_event=rt.migrate(ref, m1))
        assert len(flips) == 3  # two injected failures, then success
        assert rt.migration.migrations_retried == 2
        assert ref.machine is m1

    def test_fault_hook_failure_releases_reservation(self):
        """An injected failure must hand back the trial reservation, or
        repeated flakiness leaks the destination's DRAM."""
        rt = self.two_machines(max_retries=0)
        m0, m1 = rt.cluster.machines
        rt.migration.fault_hook = lambda p, d: True
        ref = rt.spawn(Holder(heap=100 * MiB), m0)
        rt.sim.run(until=0.001)
        used_before = m1.memory.used
        with pytest.raises(MigrationFailed):
            rt.sim.run(until_event=rt.migrate(ref, m1))
        assert m1.memory.used == pytest.approx(used_before)

    def test_proclet_stays_gated_while_backing_off(self):
        rt = self.two_machines(max_retries=2, retry_backoff=0.01)
        m0, m1 = rt.cluster.machines
        ref = rt.spawn(Holder(heap=10 * MiB), m0)
        rt.sim.run(until=0.001)
        m1.memory.set_ballast(m1.memory.capacity)
        rt.sim.call_in(0.015, m1.memory.set_ballast, 0.0)
        mig = rt.migrate(ref, m1)
        rt.sim.run(until=0.005)  # inside the backoff window
        assert ref.proclet.status is ProcletStatus.MIGRATING
        call = ref.call("ping")
        rt.sim.run(until=0.008)
        assert not call.triggered  # gated during backoff
        rt.sim.run(until_event=mig)
        assert rt.sim.run(until_event=call) == "m1"


class TestMigrationQueueingSignal:
    def test_queueing_delay_restarts_after_migration(self, rt):
        """``detach`` resets service-start tracking, so after migrating
        into a saturated machine the §5 queueing-delay signal measures
        post-arrival queueing instead of sticking at zero forever."""
        m0, m1 = rt.cluster.machines
        ref = rt.spawn(Holder(), m0)
        call = ref.call("long_work", 0.050, caller_machine=m0)
        rt.sim.run(until=0.010)  # thread got service on m0
        items = list(ref.proclet._active_cpu)
        assert len(items) == 1
        it = items[0]
        assert it.started_at is not None
        # Saturate the destination with HIGH-priority work so the moved
        # thread starves on arrival.
        m1.cpu.hold(threads=8.0, priority=Priority.HIGH)
        rt.sim.run(until_event=rt.migrate(ref, m1))
        arrived = rt.sim.now
        assert it.started_at is None  # reset by detach
        rt.sim.run(until=arrived + 0.005)
        assert it.starved
        assert it.queueing_delay(rt.sim.now) == pytest.approx(
            rt.sim.now - arrived)
        assert not call.triggered
