"""Crash-edge races: failures landing in the narrow windows between
request, execution, and response — plus seeded jitter in the migration
retry backoff."""

import pytest

from repro.cluster import Cluster, MachineSpec, symmetric_cluster
from repro.runtime import (
    DeadProclet,
    MachineFailed,
    MigrationConfig,
    MigrationFailed,
    NuRuntime,
    Proclet,
    ProcletLost,
)
from repro.units import GiB, MiB

from ..conftest import make_qs


@pytest.fixture
def qs():
    return make_qs(enable_local_scheduler=False,
                   enable_global_scheduler=False,
                   enable_split_merge=False)


class Echo(Proclet):
    def ping(self, ctx):
        yield ctx.cpu(1e-6)
        return ctx.machine.name


class TestResponseTransferRace:
    """The source machine dies while a bulk response is on the wire."""

    def test_caller_sees_failure_not_hang(self, qs):
        m0, m1 = qs.machines
        ref = qs.spawn_memory(machine=m0)
        qs.run(until_event=ref.call("mp_put", 0, 100 * MiB, "bulk"))
        # 100 MiB at 12.5 GB/s is ~8 ms on the wire; kill the source
        # 2 ms in, with the response transfer mid-flight.
        ev = ref.call("mp_get", 0, caller_machine=m1)
        qs.run(until=qs.sim.now + 2e-3)
        qs.runtime.fail_machine(m0)
        with pytest.raises((DeadProclet, MachineFailed)):
            qs.run(until_event=ev)

    def test_cluster_stays_consistent_after_the_race(self, qs):
        from repro.chaos import InvariantChecker

        checker = InvariantChecker(qs.runtime).attach(qs.sim)
        m0, m1 = qs.machines
        ref = qs.spawn_memory(machine=m0)
        qs.run(until_event=ref.call("mp_put", 0, 100 * MiB, "bulk"))
        ev = ref.call("mp_get", 0, caller_machine=m1)
        qs.run(until=qs.sim.now + 2e-3)
        qs.runtime.fail_machine(m0)
        with pytest.raises((DeadProclet, MachineFailed)):
            qs.run(until_event=ev)
        qs.run(until=qs.sim.now + 0.01)
        assert checker.checks > 0
        checker.check()  # DRAM ledgers balanced despite the mid-wire kill

    def test_request_payload_race(self, qs):
        """Same window on the *request* leg: a bulk put whose source
        (the caller's machine) dies mid-transfer."""
        m0, m1 = qs.machines
        ref = qs.spawn_memory(machine=m0)
        ev = ref.call("mp_put", 0, 100 * MiB, "bulk", caller_machine=m1,
                      req_bytes=100 * MiB)
        qs.run(until=qs.sim.now + 2e-3)
        qs.runtime.fail_machine(m1)
        with pytest.raises((DeadProclet, MachineFailed)):
            qs.run(until_event=ev)
        # The target proclet survived its caller and still serves.
        assert qs.run(until_event=ref.call("mp_contains", 0)) is not None


class TestRestoreSpawnRace:
    """restore_machine immediately followed by spawns targeting it."""

    def test_spawn_lands_on_just_restored_machine(self, qs):
        m0, m1 = qs.machines
        qs.runtime.fail_machine(m0)
        qs.runtime.restore_machine(m0)
        ref = qs.spawn(Echo(), m0)  # same tick as the restore
        assert ref.machine is m0
        assert qs.run(until_event=ref.call("ping")) == "m0"

    def test_restored_machine_memory_starts_clean(self, qs):
        m0, _ = qs.machines
        victim = qs.spawn_memory(machine=m0)
        qs.run(until_event=victim.call("mp_put", 0, 200 * MiB, "x"))
        qs.runtime.fail_machine(m0)
        qs.runtime.restore_machine(m0)
        fresh = qs.spawn_memory(machine=m0)
        qs.run(until_event=fresh.call("mp_put", 0, 1 * MiB, "y"))
        assert m0.memory.used == pytest.approx(
            fresh.proclet.footprint)

    def test_detector_lags_but_explicit_spawn_wins(self):
        """With recovery enabled, a restored-but-not-yet-probed machine
        is still excluded from automatic placement (the detector has to
        see a heartbeat first) — but explicit spawns work immediately."""
        from repro.ft import MachineHealth, RecoveryConfig

        qs = make_qs(enable_local_scheduler=False,
                     enable_global_scheduler=False,
                     enable_split_merge=False)
        manager = qs.enable_recovery(RecoveryConfig(
            heartbeat_interval=1e-3, suspect_after=2, confirm_after=4))
        m0, m1 = qs.machines
        qs.runtime.fail_machine(m0)
        qs.run(until=0.01)
        assert manager.detector.state(m0) is MachineHealth.DEAD
        qs.runtime.restore_machine(m0)
        # Same tick: the detector has not probed yet.
        assert manager.detector.state(m0) is MachineHealth.DEAD
        ref = qs.spawn(Echo(), m0)
        assert qs.run(until_event=ref.call("ping")) == "m0"
        # Next heartbeats mark it alive and placement readmits it.
        qs.run(until=qs.sim.now + 0.01)
        assert manager.detector.state(m0) is MachineHealth.ALIVE
        assert m0 in qs.eligible_machines()


class TestMigrationRetryJitter:
    """Seeded jitter on the migration retry backoff: off by default
    (bit-identical trajectories), deterministic per seed when on."""

    def _flaky_run(self, jitter, seed=7, failures=3):
        cluster = Cluster(symmetric_cluster(2, cores=8,
                                            dram_bytes=1 * GiB,
                                            seed=seed))
        rt = NuRuntime(cluster, MigrationConfig(
            retry_backoff=1e-3, backoff_multiplier=2.0,
            retry_jitter=jitter, max_retries=failures + 1))
        m0, m1 = rt.cluster.machines

        class Holder(Proclet):
            def on_start(self, ctx):
                ctx.alloc(10 * MiB)

        count = [0]

        def flaky(proclet, dst):
            count[0] += 1
            return count[0] <= failures

        rt.migration.fault_hook = flaky
        ref = rt.spawn(Holder(), m0)
        rt.sim.run(until=0.001)
        rt.sim.run(until_event=rt.migrate(ref.proclet, m1))
        return rt.sim.now

    def test_zero_jitter_is_pure_exponential(self):
        # Attempts at +0, +1ms, +3ms, +7ms after the first failure.
        base = self._flaky_run(jitter=0.0)
        assert base == self._flaky_run(jitter=0.0)

    def test_jitter_perturbs_the_schedule(self):
        assert self._flaky_run(jitter=0.5) > self._flaky_run(jitter=0.0)

    def test_jitter_is_deterministic_per_seed(self):
        a = self._flaky_run(jitter=0.5, seed=7)
        b = self._flaky_run(jitter=0.5, seed=7)
        assert a == b

    def test_jitter_varies_with_seed(self):
        a = self._flaky_run(jitter=0.5, seed=7)
        b = self._flaky_run(jitter=0.5, seed=8)
        assert a != b

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            MigrationConfig(retry_jitter=-0.1)


class Once(Proclet):
    """Counts method-body starts — the at-most-once witness."""

    def __init__(self):
        super().__init__()
        self.executions = 0

    def work(self, ctx):
        self.executions += 1
        yield ctx.cpu(5e-3)
        return "done"


class TestCloneAtMostOnce:
    """``retryable=False`` + ``clone_to=N``: sequential failover must
    never double-execute, even when the crash lands mid-body."""

    def test_mid_call_crash_does_not_launch_a_sibling(self, qs):
        m0, m1 = qs.machines
        ref = qs.spawn(Once(), m0)
        target = ref.proclet
        ev = ref.call("work", clone_to=3, retryable=False,
                      caller_machine=m1)
        call = qs.runtime.active_clone_calls()[-1]
        # Let the body start, then kill the host mid-execution.
        qs.run(until=qs.sim.now + 2e-3)
        assert target.executions == 1
        qs.runtime.fail_machine(m0)
        with pytest.raises((DeadProclet, MachineFailed, ProcletLost)):
            qs.run(until_event=ev)
        # The failed attempt had provably started executing, so no
        # sibling was launched: the body ran exactly once.
        assert target.executions == 1
        assert len(call.attempts) == 1
        assert call.state.executions == 1

    def test_nonretryable_success_runs_exactly_once(self, qs):
        m0, _ = qs.machines
        ref = qs.spawn(Once(), m0)
        ev = ref.call("work", clone_to=3, retryable=False)
        call = qs.runtime.active_clone_calls()[-1]
        assert qs.run(until_event=ev) == "done"
        # Sequential mode: one attempt sufficed, no parallel fan-out.
        assert ref.proclet.executions == 1
        assert len(call.attempts) == 1

    def test_retryable_fanout_still_fans_out(self, qs):
        """The contrast case: the default at-least-once mode does run
        the body once per clone (that is the point of cloning)."""
        m0, _ = qs.machines
        ref = qs.spawn(Once(), m0)
        qs.run(until_event=ref.call("work", clone_to=3))
        assert ref.proclet.executions == 3
