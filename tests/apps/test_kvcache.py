"""Tests for the elastic in-memory cache."""

import pytest

from repro.apps import ElasticCache
from repro.units import KiB, MiB

from ..conftest import make_qs


@pytest.fixture
def qs():
    return make_qs(enable_local_scheduler=False,
                   enable_global_scheduler=False,
                   enable_split_merge=False)


class TestCacheBasics:
    def test_put_get_hit(self, qs):
        cache = ElasticCache(qs, budget_bytes=16 * MiB)
        qs.run(until_event=cache.put("k", "value", 64 * KiB))
        assert qs.run(until_event=cache.get("k")) == "value"
        assert cache.hit_rate == 1.0

    def test_miss_returns_none(self, qs):
        cache = ElasticCache(qs, budget_bytes=16 * MiB)
        assert qs.run(until_event=cache.get("ghost")) is None
        assert cache.hit_rate == 0.0

    def test_validation(self, qs):
        with pytest.raises(ValueError):
            ElasticCache(qs, budget_bytes=0)
        with pytest.raises(ValueError):
            ElasticCache(qs, shards=0)

    def test_memory_charged_to_machines(self, qs):
        used0 = sum(m.memory.used for m in qs.machines)
        cache = ElasticCache(qs, budget_bytes=64 * MiB)
        qs.run(until_event=cache.put("big", None, 8 * MiB))
        used1 = sum(m.memory.used for m in qs.machines)
        assert used1 - used0 >= 8 * MiB


class TestEviction:
    def test_budget_enforced(self, qs):
        cache = ElasticCache(qs, budget_bytes=4 * MiB, shards=2)
        for i in range(16):
            qs.run(until_event=cache.put(f"k{i}", i, 512 * KiB))
        qs.run(until=qs.sim.now + 0.05)
        assert cache.used_bytes <= 4.6 * MiB  # budget + one in-flight put
        assert cache.evictions > 0

    def test_recently_used_survive(self, qs):
        """CLOCK keeps hot keys: re-referenced entries get a second
        chance over cold ones."""
        cache = ElasticCache(qs, budget_bytes=3 * MiB, shards=1)
        qs.run(until_event=cache.put("hot", "H", 1 * MiB))
        qs.run(until_event=cache.put("cold1", None, 1 * MiB))
        # Touch the hot key so its reference bit is set.
        qs.run(until_event=cache.get("hot"))
        qs.run(until_event=cache.get("hot"))
        # Overflow: someone must go.
        qs.run(until_event=cache.put("cold2", None, 1 * MiB))
        qs.run(until_event=cache.put("cold3", None, 1 * MiB))
        qs.run(until=qs.sim.now + 0.05)
        assert qs.run(until_event=cache.get("hot")) == "H"

    def test_hit_rate_tracks_working_set(self, qs):
        cache = ElasticCache(qs, budget_bytes=32 * MiB, shards=2)
        rng = qs.sim.random.stream("cache")
        for i in range(50):
            qs.run(until_event=cache.put(f"k{i % 10}", i, 256 * KiB))
        hits_before = cache.hit_rate
        for _ in range(100):
            key = f"k{rng.randrange(10)}"
            qs.run(until_event=cache.get(key))
        assert cache.hit_rate > 0.9  # working set fits comfortably


class TestCacheElasticity:
    def test_shards_follow_memory_pressure(self):
        """When its machine runs out of DRAM, the cache's shards are
        evicted (migrated) elsewhere by the local scheduler — the cache
        keeps serving: the intro's fungible-cache story."""
        from repro import MachineSpec
        from repro.units import GiB

        qs = make_qs(machines=[
            MachineSpec(name="m0", cores=8, dram_bytes=1 * GiB),
            MachineSpec(name="m1", cores=8, dram_bytes=4 * GiB),
        ], enable_global_scheduler=False, enable_split_merge=False)
        cache = ElasticCache(qs, budget_bytes=512 * MiB, shards=4)
        for i in range(16):
            qs.run(until_event=cache.put(f"k{i}", i, 24 * MiB))
        m0 = qs.machines[0]
        # Foreign pressure on m0 pushes it over the watermark.
        m0.memory.reserve(m0.memory.free * 0.97)
        qs.run(until=qs.sim.now + 0.1)
        # The cache still serves every key.
        for i in range(16):
            assert qs.run(until_event=cache.get(f"k{i}")) == i

    def test_destroy_releases(self, qs):
        used0 = sum(m.memory.used for m in qs.machines)
        cache = ElasticCache(qs, budget_bytes=64 * MiB)
        qs.run(until_event=cache.put("k", None, 4 * MiB))
        cache.destroy()
        assert sum(m.memory.used for m in qs.machines) == \
            pytest.approx(used0)
