"""Properties of the seeded arrival traces feeding the serving scenario.

The exact-thinning sampler is only exact while the envelope dominates
the instantaneous rate everywhere; burst windows must stay sorted and
disjoint for the moving-cursor probe; and the whole realization must be
a pure function of ``(spec, stream, horizon)`` — grid determinism rests
on it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import ArrivalTrace, TraceSpec
from repro.sim import RandomStreams


def _trace(spec, horizon=2.0, seed=0, stream="trace"):
    return ArrivalTrace(spec, RandomStreams(seed).stream(stream), horizon)


_specs = st.builds(
    TraceSpec,
    base_rate=st.floats(10.0, 2000.0),
    period=st.floats(0.2, 2.0),
    amplitude=st.floats(0.0, 0.95),
    phase=st.floats(0.0, 1.0),
    burst_factor=st.floats(1.0, 4.0),
    bursts_per_period=st.floats(0.0, 4.0),
    burst_duration=st.floats(0.01, 0.2),
)


class TestSpecValidation:
    @pytest.mark.parametrize("kwargs", [
        {"base_rate": 0.0},
        {"base_rate": 10.0, "period": 0.0},
        {"base_rate": 10.0, "amplitude": 1.0},
        {"base_rate": 10.0, "amplitude": -0.1},
        {"base_rate": 10.0, "burst_factor": 0.5},
        {"base_rate": 10.0, "bursts_per_period": -1.0},
        {"base_rate": 10.0, "burst_duration": 0.0},
    ])
    def test_bad_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TraceSpec(**kwargs)

    def test_horizon_must_be_positive(self):
        with pytest.raises(ValueError):
            _trace(TraceSpec(base_rate=10.0), horizon=0.0)


class TestRateCurve:
    @given(_specs, st.floats(0.0, 10.0))
    @settings(max_examples=100, deadline=None)
    def test_diurnal_stays_inside_its_band(self, spec, t):
        lo, hi = 1.0 - spec.amplitude, 1.0 + spec.amplitude
        assert lo - 1e-9 <= spec.diurnal(t) <= hi + 1e-9

    @given(_specs, st.integers(0, 2 ** 16), st.floats(0.0, 2.0))
    @settings(max_examples=100, deadline=None)
    def test_envelope_dominates_rate_everywhere(self, spec, seed, t):
        """Thinning is exact iff ``rate_at(t) <= peak_rate`` always."""
        trace = _trace(spec, seed=seed)
        assert trace.rate_at(t) <= spec.peak_rate * (1 + 1e-12)
        assert trace.rate_at(t) >= 0.0

    @given(_specs, st.integers(0, 2 ** 16))
    @settings(max_examples=100, deadline=None)
    def test_rate_is_diurnal_times_burst(self, spec, seed):
        trace = _trace(spec, seed=seed)
        for t in (0.0, 0.3, 0.9, 1.7):
            want = spec.base_rate * spec.diurnal(t)
            if trace.in_burst(t):
                want *= spec.burst_factor
            assert trace.rate_at(t) == pytest.approx(want)

    def test_mean_rate_includes_burst_duty_cycle(self):
        flat = TraceSpec(base_rate=100.0)
        assert flat.mean_rate == pytest.approx(100.0)
        bursty = TraceSpec(base_rate=100.0, burst_factor=3.0,
                           bursts_per_period=2.0, burst_duration=0.05)
        # duty = 2 * 0.05 / 1.0 = 0.1; mean = 100 * (1 + 0.1 * 2) = 120.
        assert bursty.mean_rate == pytest.approx(120.0)


class TestBurstWindows:
    @given(_specs, st.integers(0, 2 ** 16))
    @settings(max_examples=100, deadline=None)
    def test_windows_sorted_disjoint_and_start_inside_horizon(
            self, spec, seed):
        trace = _trace(spec, seed=seed)
        for i, (start, end) in enumerate(trace.bursts):
            assert 0.0 <= start < trace.horizon
            assert end >= start + spec.burst_duration - 1e-12
            if i > 0:
                assert start >= trace.bursts[i - 1][1]

    @given(_specs, st.integers(0, 2 ** 16), st.floats(0.0, 2.0))
    @settings(max_examples=100, deadline=None)
    def test_in_burst_agrees_with_windows(self, spec, seed, t):
        trace = _trace(spec, seed=seed)
        want = any(start <= t < end for start, end in trace.bursts)
        assert trace.in_burst(t) == want

    def test_no_bursts_without_burst_config(self):
        assert _trace(TraceSpec(base_rate=50.0)).bursts == []
        assert _trace(TraceSpec(base_rate=50.0, burst_factor=2.0)).bursts \
            == []  # factor without windows per period


class TestArrivals:
    @given(_specs, st.integers(0, 2 ** 16))
    @settings(max_examples=60, deadline=None)
    def test_strictly_increasing_and_inside_horizon(self, spec, seed):
        times = list(_trace(spec, horizon=1.0, seed=seed).arrivals())
        assert all(0.0 < t < 1.0 for t in times)
        assert all(b > a for a, b in zip(times, times[1:]))

    @given(_specs, st.integers(0, 2 ** 16))
    @settings(max_examples=60, deadline=None)
    def test_same_seed_is_bit_identical(self, spec, seed):
        a = list(_trace(spec, seed=seed).arrivals())
        b = list(_trace(spec, seed=seed).arrivals())
        assert a == b

    def test_different_streams_differ(self):
        spec = TraceSpec(base_rate=500.0)
        a = list(_trace(spec, seed=0, stream="a").arrivals())
        b = list(_trace(spec, seed=0, stream="b").arrivals())
        assert a != b

    def test_realized_count_tracks_the_mean_rate(self):
        # 500 req/s over 4 s: Poisson(2000), +/- 5 sigma ~= 225.
        spec = TraceSpec(base_rate=500.0, amplitude=0.8)
        n = len(list(_trace(spec, horizon=4.0, seed=3).arrivals()))
        assert 1775 < n < 2225

    def test_burst_windows_are_denser(self):
        spec = TraceSpec(base_rate=800.0, amplitude=0.0, burst_factor=3.0,
                         bursts_per_period=2.0, burst_duration=0.1)
        trace = _trace(spec, horizon=4.0, seed=1)
        assert trace.bursts, "seeded config must draw at least one burst"
        times = list(trace.arrivals())
        burst_time = sum(end - start for start, end in trace.bursts)
        in_burst = sum(1 for t in times if trace.in_burst(t))
        outside = len(times) - in_burst
        rate_in = in_burst / burst_time
        rate_out = outside / (trace.horizon - burst_time)
        assert rate_in > 2.0 * rate_out
