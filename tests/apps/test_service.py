"""Tests for the latency-critical service and priority isolation."""

import pytest

from repro.apps import CloneService, FillerApp, LatencyService
from repro.hedge import Deterministic, Exponential
from repro.units import MS, US

from ..conftest import make_qs


def quiet_qs():
    return make_qs(enable_local_scheduler=False,
                   enable_global_scheduler=False,
                   enable_split_merge=False)


class TestServiceBasics:
    def test_requests_complete_with_low_latency_when_idle(self):
        qs = quiet_qs()
        svc = LatencyService(qs.machines[0], arrival_rate=1000.0,
                             service_cpu=500 * US)
        svc.start()
        qs.run(until=0.5)
        assert svc.requests_done > 300
        s = svc.latency_summary()
        # Idle machine: latency ~= service time.
        assert s.p50 < 2 * 500 * US

    def test_offered_load(self):
        qs = quiet_qs()
        svc = LatencyService(qs.machines[0], arrival_rate=2000.0,
                             service_cpu=1 * MS)
        assert svc.offered_load == pytest.approx(2.0)

    def test_validation(self):
        qs = quiet_qs()
        with pytest.raises(ValueError):
            LatencyService(qs.machines[0], arrival_rate=0.0)
        with pytest.raises(ValueError):
            LatencyService(qs.machines[0], arrival_rate=1.0,
                           service_cpu=0.0)

    def test_double_start_rejected(self):
        qs = quiet_qs()
        svc = LatencyService(qs.machines[0], arrival_rate=100.0)
        svc.start()
        with pytest.raises(RuntimeError):
            svc.start()

    def test_stop_halts_arrivals(self):
        qs = quiet_qs()
        svc = LatencyService(qs.machines[0], arrival_rate=1000.0)
        svc.start()
        qs.run(until=0.1)
        svc.stop()
        done = svc.requests_done
        qs.run(until=0.3)
        assert svc.requests_done <= done + 2  # at most in-flight ones


class TestPriorityIsolation:
    """The quantitative version of Fig. 1's premise: harvesting idle
    cycles must not hurt the HIGH-priority tenant's tail latency."""

    def _run_service(self, with_filler: bool):
        qs = quiet_qs()
        m0 = qs.machines[0]
        svc = LatencyService(m0, arrival_rate=4000.0,
                             service_cpu=500 * US,
                             rng_stream="svc")  # ~2 of 8 cores
        svc.start()
        filler = None
        if with_filler:
            filler = FillerApp(qs, proclets=8, work_unit=100 * US,
                               machine=m0)
        qs.run(until=0.5)
        return svc.latency_summary(), filler, qs

    def test_filler_does_not_inflate_service_tail(self):
        alone, _f, _qs = self._run_service(with_filler=False)
        shared, filler, qs = self._run_service(with_filler=True)
        # Same arrival seed, same service: the tail must be unaffected
        # by a filler saturating every leftover cycle.
        assert shared.p99 <= alone.p99 * 1.25 + 50e-6
        # ... while the filler actually harvested the leftovers.
        goodput = filler.goodput_cores(0.1, 0.5)
        assert goodput > 4.0  # ~6 cores are idle on average

    def test_filler_yields_instantly_to_bursts(self):
        """Mid-burst, the filler gets nothing; after, everything."""
        from repro.cluster import Priority

        qs = quiet_qs()
        m0 = qs.machines[0]
        filler = FillerApp(qs, proclets=8, work_unit=100 * US,
                           machine=m0)
        qs.run(until=0.05)
        hold = m0.cpu.hold(threads=8.0, priority=Priority.HIGH)
        burst_start = qs.sim.now
        qs.run(until=burst_start + 0.05)
        starved = filler.goodput_cores(burst_start + 1 * MS,
                                       qs.sim.now)
        m0.cpu.release(hold)
        resume_start = qs.sim.now
        qs.run(until=resume_start + 0.05)
        resumed = filler.goodput_cores(resume_start + 1 * MS, qs.sim.now)
        assert starved < 0.2
        assert resumed > 7.0


class TestCloneService:
    """The multi-server PS fleet with synchronized request cloning."""

    def test_validation(self):
        qs = quiet_qs()
        dist = Exponential(mean=1 * MS)
        with pytest.raises(ValueError):
            CloneService([], 100.0, dist)
        with pytest.raises(ValueError):
            CloneService(qs.machines, 0.0, dist)
        with pytest.raises(ValueError):
            # 3 does not divide 2 machines.
            CloneService(qs.machines, 100.0, dist, clone_factor=3)
        with pytest.raises(ValueError):
            CloneService(qs.machines, 100.0, dist, hedge_after=0.0)
        with pytest.raises(ValueError):
            CloneService(qs.machines, 100.0, dist, clone_budget=-1)

    def test_double_start_rejected(self):
        qs = quiet_qs()
        svc = CloneService(qs.machines, 100.0, Exponential(mean=1 * MS))
        svc.start()
        with pytest.raises(RuntimeError):
            svc.start()

    def test_cloned_requests_complete_and_cancel_losers(self):
        qs = quiet_qs()
        svc = CloneService(qs.machines, 200.0, Exponential(mean=1 * MS),
                           clone_factor=2)
        svc.start()
        qs.run(until=0.5)
        assert svc.requests_done > 50
        assert svc.failed_requests == 0
        # Every completed request launched 2 clones and cancelled 1
        # (minus any exact ties, which complete instead).
        assert svc.clones_launched >= 2 * svc.requests_done
        assert svc.clones_cancelled >= 0.9 * svc.requests_done
        assert len(svc.samples) == svc.requests_done
        arrivals = [arrived for arrived, _lat in svc.samples]
        assert all(t >= 0 for t in arrivals)

    def test_offered_load_matches_oracle_utilization(self):
        from repro.hedge import clone_utilization

        qs = quiet_qs()
        dist = Exponential(mean=1 * MS)
        svc = CloneService(qs.machines, 500.0, dist, clone_factor=2)
        assert svc.offered_load == pytest.approx(
            clone_utilization(500.0, 2, 2, dist))

    def test_hedging_fires_only_for_slow_requests(self):
        qs = quiet_qs()
        # Deterministic 5 ms service, 1 ms hedge: every request hedges.
        svc = CloneService(qs.machines, 50.0, Deterministic(value=5 * MS),
                           clone_factor=2, hedge_after=1 * MS)
        svc.start()
        qs.run(until=0.3)
        assert svc.requests_done > 5
        assert svc.hedges_fired >= 0.9 * svc.requests_done
        # A hedge timer that loses is cancelled through the kernel
        # machinery: once arrivals stop and the sim drains, every
        # tombstoned entry was reclaimed.
        svc.stop()
        qs.sim.run()
        assert qs.sim.heap_stats()["dead_entries"] == 0

    def test_zero_budget_degrades_to_uncloned(self):
        qs = quiet_qs()
        svc = CloneService(qs.machines, 200.0, Exponential(mean=1 * MS),
                           clone_factor=2, clone_budget=0)
        svc.start()
        qs.run(until=0.3)
        assert svc.requests_done > 20
        # No extras ever launched: exactly one clone per request.
        assert svc.clones_launched == \
            svc.requests_done + svc.failed_requests
        assert svc.budget_denied >= svc.requests_done
        assert svc.clones_cancelled == 0

    def test_crashed_server_does_not_fail_cloned_requests(self):
        qs = quiet_qs()
        m0, _m1 = qs.machines
        svc = CloneService(qs.machines, 100.0, Exponential(mean=1 * MS),
                           clone_factor=2)
        svc.start()
        qs.run(until=0.1)
        qs.runtime.fail_machine(m0)
        qs.run(until=0.2)
        svc.stop()
        qs.run(until=0.3)
        # The surviving sibling serves every request alone.
        assert svc.requests_done > 10
        assert svc.failed_requests == 0

    def test_latency_summary_trims_warmup(self):
        qs = quiet_qs()
        svc = CloneService(qs.machines, 500.0, Exponential(mean=1 * MS))
        svc.start()
        qs.run(until=0.4)
        full = svc.latency_summary()
        trimmed = svc.latency_summary(since=0.2)
        assert trimmed.count < full.count
        assert trimmed.count > 0


class TestUnifiedLatencySummary:
    """Both services expose the same `since` (virtual-time) trimming
    contract; LatencyService keeps the legacy `since_index` form."""

    def _run(self):
        qs = quiet_qs()
        svc = LatencyService(qs.machines[0], arrival_rate=2000.0,
                             service_cpu=500 * US)
        svc.start()
        qs.run(until=0.4)
        return svc

    def test_since_trims_by_arrival_time(self):
        svc = self._run()
        full = svc.latency_summary()
        trimmed = svc.latency_summary(since=0.2)
        assert 0 < trimmed.count < full.count
        # Exactly the requests that arrived in the kept window.
        want = [lat for arr, lat in svc.samples if arr >= 0.2]
        assert trimmed.count == len(want)

    def test_since_index_still_works(self):
        svc = self._run()
        full = svc.latency_summary()
        legacy = svc.latency_summary(since_index=10)
        assert legacy.count == full.count - 10

    def test_since_zero_equals_untrimmed(self):
        svc = self._run()
        assert svc.latency_summary(since=0.0) == svc.latency_summary()

    def test_since_wins_over_since_index(self):
        svc = self._run()
        both = svc.latency_summary(since=0.2, since_index=10**6)
        assert both == svc.latency_summary(since=0.2)

    def test_matches_clone_service_shape(self):
        """The two services' samples lists are interchangeable."""
        svc = self._run()
        assert all(isinstance(arr, float) and isinstance(lat, float)
                   for arr, lat in svc.samples)
        assert svc.latencies == [lat for _arr, lat in svc.samples]
