"""Unit tests for the phased antagonist and the filler app."""

import pytest

from repro.apps import FillerApp, PhasedApp
from repro.cluster import Priority
from repro.units import MS, US

from ..conftest import make_qs


class TestPhasedApp:
    def test_square_wave_occupies_and_releases(self):
        qs = make_qs(enable_local_scheduler=False,
                     enable_global_scheduler=False,
                     enable_split_merge=False)
        m0 = qs.machines[0]
        app = PhasedApp(m0, burst=10 * MS, idle=10 * MS)
        app.start()
        qs.run(until=5 * MS)  # mid-burst
        assert m0.cpu.free_cores(Priority.NORMAL) == pytest.approx(0.0)
        qs.run(until=15 * MS)  # mid-idle
        assert m0.cpu.free_cores(Priority.NORMAL) == pytest.approx(8.0)
        qs.run(until=25 * MS)  # next burst
        assert m0.cpu.free_cores(Priority.NORMAL) == pytest.approx(0.0)

    def test_phase_offset_shifts_bursts(self):
        qs = make_qs(enable_local_scheduler=False,
                     enable_global_scheduler=False,
                     enable_split_merge=False)
        m0 = qs.machines[0]
        app = PhasedApp(m0, burst=10 * MS, idle=10 * MS,
                        phase_offset=10 * MS)
        app.start()
        qs.run(until=5 * MS)  # still in the offset window
        assert m0.cpu.free_cores(Priority.NORMAL) == pytest.approx(8.0)
        qs.run(until=15 * MS)
        assert m0.cpu.free_cores(Priority.NORMAL) == pytest.approx(0.0)

    def test_stop_halts_future_bursts(self):
        qs = make_qs(enable_local_scheduler=False,
                     enable_global_scheduler=False,
                     enable_split_merge=False)
        m0 = qs.machines[0]
        app = PhasedApp(m0, burst=5 * MS, idle=5 * MS)
        app.start()
        qs.run(until=12 * MS)
        app.stop()
        bursts = app.bursts
        qs.run(until=100 * MS)
        assert app.bursts <= bursts + 1  # at most the in-flight one

    def test_partial_cores(self):
        qs = make_qs(enable_local_scheduler=False,
                     enable_global_scheduler=False,
                     enable_split_merge=False)
        m0 = qs.machines[0]
        PhasedApp(m0, burst=10 * MS, idle=10 * MS, cores=4.0).start()
        qs.run(until=5 * MS)
        assert m0.cpu.free_cores(Priority.NORMAL) == pytest.approx(4.0)

    def test_validation(self):
        qs = make_qs()
        m0 = qs.machines[0]
        with pytest.raises(ValueError):
            PhasedApp(m0, burst=0.0)
        with pytest.raises(ValueError):
            PhasedApp(m0, phase_offset=-1.0)

    def test_double_start_rejected(self):
        qs = make_qs()
        app = PhasedApp(qs.machines[0])
        app.start()
        with pytest.raises(RuntimeError):
            app.start()


class TestFillerApp:
    def _quiet_qs(self):
        return make_qs(enable_local_scheduler=False,
                       enable_global_scheduler=False,
                       enable_split_merge=False)

    def test_fills_idle_machine_completely(self):
        qs = self._quiet_qs()
        filler = FillerApp(qs, proclets=8, work_unit=100 * US,
                           machine=qs.machines[0])
        qs.run(until=50 * MS)
        # 8 proclets x 1 thread on 8 cores: goodput ~8 cores
        goodput = filler.goodput_cores(10 * MS, 50 * MS)
        assert goodput > 7.5

    def test_goodput_halves_under_half_time_bursts(self):
        qs = self._quiet_qs()
        m0 = qs.machines[0]
        PhasedApp(m0, burst=10 * MS, idle=10 * MS).start()
        filler = FillerApp(qs, proclets=8, work_unit=100 * US, machine=m0)
        qs.run(until=100 * MS)
        goodput = filler.goodput_cores(20 * MS, 100 * MS)
        assert 3.0 < goodput < 5.0

    def test_stop_ends_work_generation(self):
        qs = self._quiet_qs()
        filler = FillerApp(qs, proclets=4, machine=qs.machines[0])
        qs.run(until=10 * MS)
        qs.run(until_event=filler.stop())
        done = filler.units_done
        qs.run(until=50 * MS)
        assert filler.units_done == done

    def test_proclet_state_charged(self):
        qs = self._quiet_qs()
        m0 = qs.machines[0]
        used0 = m0.memory.used
        FillerApp(qs, proclets=4, state_bytes=1024 * 1024, machine=m0)
        assert m0.memory.used >= used0 + 4 * 1024 * 1024

    def test_timeline_buckets(self):
        qs = self._quiet_qs()
        filler = FillerApp(qs, proclets=2, machine=qs.machines[0])
        qs.run(until=20 * MS)
        timeline = filler.goodput_timeline(0.0, 20 * MS, bucket=5 * MS)
        assert len(timeline) == 4
        assert all(v >= 0 for _t, v in timeline)

    def test_validation(self):
        qs = self._quiet_qs()
        with pytest.raises(ValueError):
            FillerApp(qs, proclets=0)
        with pytest.raises(ValueError):
            FillerApp(qs, work_unit=0.0)
