"""Unit and property tests for the multi-tenant serving scenario.

The golden figure-shape numbers live in
:mod:`tests.experiments.test_serving_golden`; here the pieces are
checked in isolation: the admission controller's PS-derived cap, the
weighted water-filling allocator, static-mode apportionment, and the
scenario lifecycle in both modes.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    AdmissionController,
    ServingReplica,
    ServingScenario,
    TenantSpec,
    TraceSpec,
    default_tenants,
    weighted_water_fill,
)
from repro.units import MS


def _tenant(name="t0", rate=200.0, service=2.5 * MS, deadline=50 * MS,
            weight=1.0, **trace_kwargs):
    return TenantSpec(name=name,
                      trace=TraceSpec(base_rate=rate, **trace_kwargs),
                      service_mean=service, slo_deadline=deadline,
                      weight=weight)


def _scenario(mode, n=4, machines=6, duration=0.3, warmup=0.1, **kwargs):
    return ServingScenario(default_tenants(n), machines=machines,
                           mode=mode, seed=0, duration=duration,
                           warmup=warmup, **kwargs)


class TestTenantSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            _tenant(service=0.0)
        with pytest.raises(ValueError):
            _tenant(service=10 * MS, deadline=10 * MS)
        with pytest.raises(ValueError):
            _tenant(weight=0.0)

    def test_mean_demand_cores(self):
        t = _tenant(rate=400.0, service=2.5 * MS)
        assert t.mean_demand_cores == pytest.approx(1.0)


class TestAdmissionController:
    def test_slack_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(0.0)
        with pytest.raises(ValueError):
            AdmissionController(2.5)

    @given(st.floats(0.05, 2.0), st.floats(0.0, 64.0),
           st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_admit_iff_below_cap_and_cap_at_least_one(
            self, slack, capacity, inflight):
        spec = _tenant()
        ac = AdmissionController(slack)
        cap = ac.max_inflight(spec, capacity)
        assert cap >= 1
        assert ac.admit(spec, inflight, capacity) == (inflight < cap)

    @given(st.floats(0.05, 2.0), st.floats(0.0, 32.0), st.floats(0.0, 32.0))
    @settings(max_examples=100, deadline=None)
    def test_cap_monotone_in_capacity(self, slack, cap_a, cap_b):
        spec = _tenant()
        ac = AdmissionController(slack)
        lo, hi = sorted((cap_a, cap_b))
        assert ac.max_inflight(spec, lo) <= ac.max_inflight(spec, hi)

    def test_cap_scales_with_deadline_headroom(self):
        ac = AdmissionController(0.5)
        tight = _tenant(service=10 * MS, deadline=20 * MS)
        loose = _tenant(service=10 * MS, deadline=200 * MS)
        assert ac.max_inflight(loose, 4.0) == \
            10 * ac.max_inflight(tight, 4.0)


_demand_maps = st.dictionaries(
    st.sampled_from([f"t{i}" for i in range(6)]),
    st.floats(0.0, 50.0), min_size=1, max_size=6)


class TestWeightedWaterFill:
    @given(_demand_maps, st.floats(0.0, 100.0), st.floats(0.5, 4.0))
    @settings(max_examples=150, deadline=None)
    def test_feasible_and_demand_bounded(self, demands, capacity, w):
        weights = {n: w if i % 2 else 1.0
                   for i, n in enumerate(sorted(demands))}
        alloc = weighted_water_fill(demands, weights, capacity)
        assert set(alloc) == set(demands)
        assert all(a >= 0.0 for a in alloc.values())
        for n in demands:
            assert alloc[n] <= demands[n] + 1e-9
        assert sum(alloc.values()) <= capacity + 1e-6

    @given(_demand_maps, st.floats(0.5, 4.0))
    @settings(max_examples=100, deadline=None)
    def test_ample_capacity_satisfies_everyone(self, demands, w):
        weights = {n: w for n in demands}
        capacity = sum(demands.values()) + 1.0
        alloc = weighted_water_fill(demands, weights, capacity)
        for n in demands:
            assert alloc[n] == pytest.approx(demands[n])

    @given(_demand_maps, st.floats(0.0, 100.0))
    @settings(max_examples=100, deadline=None)
    def test_work_conserving_under_contention(self, demands, capacity):
        """Either every demand is met or the capacity is fully used."""
        weights = {n: 1.0 for n in demands}
        alloc = weighted_water_fill(demands, weights, capacity)
        total_demand = sum(demands.values())
        assert sum(alloc.values()) == \
            pytest.approx(min(total_demand, capacity), abs=1e-6)

    def test_contended_split_follows_weights(self):
        demands = {"a": 100.0, "b": 100.0, "c": 1.0}
        weights = {"a": 2.0, "b": 1.0, "c": 1.0}
        alloc = weighted_water_fill(demands, weights, 31.0)
        # c is sated first (1 core); a and b split 30 in ratio 2:1.
        assert alloc["c"] == pytest.approx(1.0)
        assert alloc["a"] == pytest.approx(20.0)
        assert alloc["b"] == pytest.approx(10.0)

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            weighted_water_fill({"a": 1.0}, {"a": 1.0}, -1.0)


class TestScenarioConstruction:
    def test_mode_and_name_validation(self):
        with pytest.raises(ValueError):
            _scenario("elastic")
        with pytest.raises(ValueError):
            ServingScenario([_tenant("dup"), _tenant("dup")], machines=4)
        with pytest.raises(ValueError):
            ServingScenario([_tenant()], duration=1.0, warmup=1.0)

    def test_static_partition_covers_cluster_by_weight(self):
        sc = _scenario("static", n=4, machines=10)
        counts = {name: len(ms) for name, ms in sc.partitions.items()}
        assert sum(counts.values()) == 10
        assert all(c >= 1 for c in counts.values())
        # Even tenants over-reserve (weight 2): they own more machines.
        assert counts["t0"] > counts["t1"]
        owned = [m for ms in sc.partitions.values() for m in ms]
        assert len(set(owned)) == len(owned)  # disjoint

    def test_static_needs_a_machine_per_tenant(self):
        with pytest.raises(ValueError):
            _scenario("static", n=8, machines=4)

    def test_static_pins_one_replica_per_core(self):
        sc = _scenario("static", n=4, machines=8)
        for t in sc.tenants:
            owned_cores = sum(int(m.cpu.cores)
                              for m in sc.partitions[t.spec.name])
            assert len(t.live_replicas()) == owned_cores
        assert sc.scheduler is None

    def test_fungible_bootstraps_near_mean_demand(self):
        sc = _scenario("fungible", n=4, machines=8)
        assert sc.scheduler is not None
        for t in sc.tenants:
            assert len(t.live_replicas()) == \
                max(1, math.ceil(t.spec.mean_demand_cores))


class TestScenarioRuns:
    @pytest.fixture(scope="class", params=["fungible", "static"])
    def scenario(self, request):
        sc = _scenario(request.param, n=4, machines=8,
                       duration=0.4, warmup=0.1)
        sc.run()
        return sc

    def test_traffic_flows_and_slo_is_measured(self, scenario):
        r = scenario.results()
        assert r["offered"] > 100
        assert 0.0 < r["goodput"] <= 1.0
        assert r["slo_ok"] <= r["offered"]
        assert r["p999"] >= r["p99"] > 0.0
        assert 0.0 < r["utilization"] <= 1.0

    def test_no_tenant_starves_in_steady_state(self, scenario):
        assert scenario.check_no_starvation() == []

    def test_per_tenant_counters_are_consistent(self, scenario):
        for t in scenario.tenants:
            assert t.offered == t.admitted + t.rejected
            assert t.completed + t.failed + t.inflight == t.admitted
            assert t.slo_ok <= t.completed

    def test_static_mode_never_scales_or_migrates(self):
        sc = _scenario("static", n=4, machines=8, duration=0.3)
        spawned_before = [t.spawned for t in sc.tenants]
        sc.run()
        r = sc.results()
        assert r["migrations"] == r["scale_ups"] == r["scale_downs"] == 0
        assert [t.spawned for t in sc.tenants] == spawned_before

    def test_fungible_scheduler_reacts_to_demand(self):
        sc = _scenario("fungible", n=4, machines=8, duration=0.4)
        sc.run()
        assert sc.scheduler.rounds > 10
        # Diurnal swings across tenants force at least some rescaling.
        assert sc.scheduler.scale_ups + sc.scheduler.scale_downs > 0

    def test_same_seed_same_results(self):
        a = _scenario("fungible", n=4, machines=8, duration=0.3)
        a.run()
        b = _scenario("fungible", n=4, machines=8, duration=0.3)
        b.run()
        assert a.results() == b.results()


class TestReplicaProclet:
    def test_replica_is_a_unit_compute_proclet(self):
        r = ServingReplica("t7")
        assert r.parallelism == 1
        assert r.tenant_name == "t7"
