"""Shared fixtures and helpers for the test suite."""

import pytest

from repro import (
    ClusterSpec,
    GpuSpec,
    MachineSpec,
    Quicksand,
    QuicksandConfig,
    StorageSpec,
)
from repro.units import GiB


def make_qs(machines=None, config=None, **config_kwargs):
    """Build a Quicksand runtime over a small default cluster."""
    if machines is None:
        machines = [
            MachineSpec(name="m0", cores=8, dram_bytes=4 * GiB),
            MachineSpec(name="m1", cores=8, dram_bytes=4 * GiB),
        ]
    if config is None:
        config = QuicksandConfig(**config_kwargs)
    return Quicksand(ClusterSpec(machines=machines), config=config)


@pytest.fixture
def qs():
    return make_qs()


@pytest.fixture
def qs_quiet():
    """A runtime with all background controllers disabled — unit tests
    of individual mechanisms use this to avoid interference."""
    return make_qs(enable_local_scheduler=False,
                   enable_global_scheduler=False,
                   enable_split_merge=False)


def gpu_machine(name="g0", cores=8, dram=4 * GiB, gpus=4,
                batch_time=0.01):
    return MachineSpec(name=name, cores=cores, dram_bytes=dram,
                       gpus=GpuSpec(count=gpus, batch_time=batch_time))


def storage_machine(name="s0", cores=4, dram=2 * GiB,
                    capacity=64 * GiB, iops=100_000.0):
    return MachineSpec(
        name=name, cores=cores, dram_bytes=dram,
        storage=StorageSpec(capacity_bytes=capacity, iops=iops),
    )
