"""Integration tests: scaled-down versions of every experiment harness.

These exercise the full stack (apps -> data structures -> Quicksand ->
Nu runtime -> cluster -> DES kernel) and assert the paper's qualitative
claims hold at reduced scale, keeping them fast enough for every test
run.  Full-scale numbers live in the benchmark harness.
"""

import pytest

from repro.apps.dnn import DatasetSpec
from repro.experiments.ablations import (
    run_hybrid_ablation,
    run_migration_granularity,
    run_split_ablation,
    run_two_level_ablation,
)
from repro.experiments.fig1_filler import Fig1Config, run_fig1
from repro.experiments.fig2_imbalance import PAPER_CONFIGS, run_fig2_config
from repro.experiments.fig3_gpu_adapt import Fig3Config, run_fig3
from repro.units import KiB, MS, MiB


class TestFig1Integration:
    def test_fungible_doubles_static_goodput(self):
        fungible = run_fig1(Fig1Config(fungible=True, duration=60 * MS))
        static = run_fig1(Fig1Config(fungible=False, duration=60 * MS))
        assert fungible.mean_goodput_cores > 1.6 * static.mean_goodput_cores
        assert fungible.migration_latency.p99 < 1 * MS
        assert static.migrations == 0

    def test_filler_timeline_shows_bursts_filled(self):
        result = run_fig1(Fig1Config(fungible=True, duration=60 * MS))
        values = [v for _t, v in result.goodput_timeline]
        # Most 1 ms buckets run at (nearly) full machine capacity.
        full = sum(1 for v in values if v > 7.0)
        assert full > 0.7 * len(values)

    def test_determinism(self):
        a = run_fig1(Fig1Config(duration=40 * MS, seed=3))
        b = run_fig1(Fig1Config(duration=40 * MS, seed=3))
        assert a.mean_goodput_cores == b.mean_goodput_cores
        assert a.migrations == b.migrations


class TestFig2Integration:
    DATASET = DatasetSpec(count=240, mean_bytes=1 * MiB, mean_cpu=0.1)
    IDEAL = DATASET.total_cpu / 46.0
    _baseline_cache = {}

    def _baseline_time(self) -> float:
        """Measured single-machine time (class-level cache).

        The paper's claim is imbalanced ≈ baseline — the baseline itself
        carries whatever scheduling tail the scale implies, so ratios
        against it are the right comparison at any dataset size.
        """
        if "t" not in self._baseline_cache:
            row = run_fig2_config("baseline",
                                  dict(PAPER_CONFIGS)["baseline"],
                                  dataset=self.DATASET)
            self._baseline_cache["t"] = row.time_s
        return self._baseline_cache["t"]

    @pytest.mark.parametrize("name",
                             [n for n, _m in PAPER_CONFIGS
                              if n != "baseline"])
    def test_config_matches_baseline(self, name):
        machines = dict(PAPER_CONFIGS)[name]
        row = run_fig2_config(name, machines, dataset=self.DATASET)
        baseline = self._baseline_time()
        assert row.time_s < baseline * 1.05, (
            f"{name}: {row.time_s:.3f}s vs baseline {baseline:.3f}s"
        )

    def test_baseline_is_sane(self):
        # Baseline within 2x of the perfectly-parallel lower bound (the
        # gap is the self-balancing tail at this tiny scale).
        assert self.IDEAL <= self._baseline_time() < 2.0 * self.IDEAL

    def test_both_unbalanced_placement_shape(self):
        row = run_fig2_config("both-unbalanced",
                              dict(PAPER_CONFIGS)["both-unbalanced"],
                              dataset=self.DATASET)
        shards_on_memheavy = row.shard_machines.get("m0", 0)
        assert shards_on_memheavy > 0.8 * sum(row.shard_machines.values())
        assert row.worker_machines.get("m1", 0) >= 40


class TestFig3Integration:
    def test_adaptation_tracks_gpus(self):
        result = run_fig3(Fig3Config(duration=0.9))
        assert result.adaptation_success_rate == 1.0
        assert result.latency_summary.p90 < 25 * MS
        counts = {v for _t, v in result.member_trace}
        assert {4, 8} <= counts
        assert result.gpu_idle_fraction < 0.15

    def test_gpu_toggles_recorded(self):
        result = run_fig3(Fig3Config(duration=0.5))
        levels = [lvl for _t, lvl in result.toggles]
        assert levels[0] == 8
        assert set(levels) == {4, 8}


class TestAblationIntegration:
    def test_migration_latency_monotone_in_heap(self):
        points = run_migration_granularity(
            sizes=[64 * KiB, 1 * MiB, 16 * MiB])
        latencies = [lat for _sz, lat in points]
        assert latencies == sorted(latencies)
        assert latencies[0] < 0.5 * MS

    def test_split_rule_bounds_migration(self):
        result = run_split_ablation(total_bytes=64 * MiB)
        assert result.with_split_migration_s < \
            result.without_split_migration_s

    def test_hybrid_strands_decoupled_fits(self):
        result = run_hybrid_ablation()
        assert result.hybrid_failed > 0
        assert result.decoupled_failed == 0

    def test_two_level_local_wins(self):
        result = run_two_level_ablation(duration=0.1)
        assert result.local_goodput_cores > \
            result.global_only_goodput_cores
