"""Integration tests for the DNN pipeline and cross-layer behaviours."""

import pytest

from repro import ClusterSpec, GpuSpec, MachineSpec, Proclet
from repro.apps import WordCountJob
from repro.apps.dnn import (
    BatchPipeline,
    DatasetSpec,
    GpuAvailabilityDriver,
    StreamingPipeline,
    load_dataset,
)
from repro.core import Quicksand, QuicksandConfig
from repro.units import GiB, KiB, MS, MiB

from ..conftest import make_qs


class TestBatchPipeline:
    def test_end_to_end_counts(self):
        qs = make_qs(enable_global_scheduler=False)
        ds = DatasetSpec(count=100, mean_bytes=256 * KiB, mean_cpu=0.01)
        pipeline = BatchPipeline(qs, dataset=ds, workers=8)
        result = pipeline.run()
        assert result.images == 100
        assert pipeline.stage.images_done == 100
        assert pipeline.queue.pushed == 100
        assert result.preprocess_time > 0

    def test_jittered_dataset(self):
        qs = make_qs(enable_global_scheduler=False)
        ds = DatasetSpec(count=60, mean_bytes=128 * KiB, mean_cpu=0.005,
                         size_jitter=0.5, cpu_jitter=0.5)
        pipeline = BatchPipeline(qs, dataset=ds, workers=4)
        result = pipeline.run()
        assert result.images == 60

    def test_dataset_validation(self):
        with pytest.raises(ValueError):
            DatasetSpec(count=0)
        with pytest.raises(ValueError):
            DatasetSpec(mean_cpu=0.0)
        with pytest.raises(ValueError):
            DatasetSpec(size_jitter=1.0)

    def test_load_dataset_fills_vector(self):
        qs = make_qs(enable_global_scheduler=False)
        vec = qs.sharded_vector(name="imgs")
        ds = DatasetSpec(count=50, mean_bytes=512 * KiB, mean_cpu=0.01)
        n = qs.sim.run(until_event=load_dataset(qs, vec, ds))
        assert n == 50
        assert len(vec) == 50
        assert vec.total_bytes == pytest.approx(ds.total_bytes)


class TestStreamingPipeline:
    def _cluster(self):
        return Quicksand(ClusterSpec(machines=[
            MachineSpec(name="cpu0", cores=16, dram_bytes=4 * GiB),
            MachineSpec(name="gpubox", cores=8, dram_bytes=4 * GiB,
                        gpus=GpuSpec(count=4, batch_time=10 * MS)),
        ]), config=QuicksandConfig(enable_global_scheduler=False))

    def test_trains_continuously(self):
        qs = self._cluster()
        pipeline = StreamingPipeline(qs, qs.machine("gpubox"),
                                     cpu_per_batch=10 * MS,
                                     initial_members=4)
        pipeline.start()
        qs.run(until=qs.sim.now + 0.5)
        # 4 GPUs x 100 batches/s x 0.5 s ~ 200 batches
        assert pipeline.trainer.batches_trained > 150

    def test_gpu_resize_moves_consumption(self):
        qs = self._cluster()
        pipeline = StreamingPipeline(qs, qs.machine("gpubox"),
                                     cpu_per_batch=10 * MS,
                                     initial_members=4, max_members=12)
        pipeline.start()
        qs.run(until=qs.sim.now + 0.2)
        before = pipeline.trainer.batches_trained
        qs.machine("gpubox").gpus.resize(2)
        qs.run(until=qs.sim.now + 0.2)
        after = pipeline.trainer.batches_trained
        # halved GPUs -> roughly halved consumption in the second window
        assert (after - before) < 0.7 * before

    def test_driver_validation(self):
        qs = self._cluster()
        with pytest.raises(ValueError):
            GpuAvailabilityDriver(qs.machine("gpubox"), low=4, high=2)
        with pytest.raises(ValueError):
            GpuAvailabilityDriver(qs.machine("gpubox"), period=0)
        with pytest.raises(ValueError):
            GpuAvailabilityDriver(qs.machine("cpu0"))


class TestWordCount:
    def test_matches_oracle(self):
        qs = make_qs()
        job = WordCountJob(qs, documents=120, words_per_doc=40,
                           vocabulary=15, pool_members=3)
        counts = qs.run(until_event=job.run())
        assert counts == job.expected


class TestCrossLayerBehaviours:
    def test_migration_during_pipeline_is_transparent(self):
        """Migrating a shard mid-run must not lose or corrupt reads."""
        qs = make_qs(enable_global_scheduler=False)
        vec = qs.sharded_vector(name="v")
        events = [vec.append(i, 64 * KiB) for i in range(200)]
        qs.sim.run(until_event=qs.sim.all_of(events))
        qs.sim.run(until=qs.sim.now + 0.05)

        class Scanner(Proclet):
            def __init__(self):
                super().__init__()
                self.seen = []

            def scan(self, ctx, reader):
                while True:
                    batch = yield from reader.next_batch(ctx)
                    if batch is None:
                        return
                    for key, _v in batch:
                        self.seen.append(key)
                    yield ctx.cpu(0.001)

        scanner = qs.spawn(Scanner(), qs.machines[0])
        done = scanner.call("scan", vec.reader(0, 200, chunk=8))
        qs.sim.run(until=qs.sim.now + 0.002)
        # migrate a shard mid-scan
        shard = vec.shards[0]
        dst = next(m for m in qs.machines if m is not shard.ref.machine)
        qs.sim.run(until_event=qs.runtime.migrate(shard.ref, dst))
        qs.sim.run(until_event=done)
        assert scanner.proclet.seen == list(range(200))

    def test_memory_pressure_eviction_keeps_pipeline_running(self):
        """Foreign memory pressure mid-run evicts shards, not progress."""
        qs = make_qs(machines=[
            MachineSpec(name="m0", cores=8, dram_bytes=1 * GiB),
            MachineSpec(name="m1", cores=8, dram_bytes=4 * GiB),
        ], enable_global_scheduler=False)
        m0 = qs.machines[0]
        vec = qs.sharded_vector(name="v", initial_machine=m0)
        events = [vec.append(i, 1 * MiB) for i in range(100)]
        qs.sim.run(until_event=qs.sim.all_of(events))
        qs.sim.run(until=qs.sim.now + 0.05)
        # squeeze m0
        m0.memory.reserve(m0.memory.free * 0.95)
        qs.sim.run(until=qs.sim.now + 0.1)
        # everything still readable
        for i in (0, 50, 99):
            assert qs.sim.run(until_event=vec.get(i)) == i

    def test_affinity_metrics_populated_by_pipeline(self):
        qs = make_qs(enable_global_scheduler=False)
        ds = DatasetSpec(count=60, mean_bytes=256 * KiB, mean_cpu=0.01)
        pipeline = BatchPipeline(qs, dataset=ds, workers=4)
        pipeline.run()
        assert qs.affinity.total_remote_calls + \
            qs.affinity.total_local_calls > 0
