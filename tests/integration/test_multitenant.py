"""Whole-system stress: every application sharing one cluster.

The utility-computing end state the paper argues for — latency-critical
services, an elastic cache, a fungible filler, and a batch pipeline all
multiplexed onto the same machines, each consuming its own resource
kind — must compose without interference beyond what priorities imply.
"""

import pytest

from repro import MachineSpec, MigrationFailed, ProcletStatus
from repro.apps import ElasticCache, FillerApp, LatencyService
from repro.units import GiB, KiB, MS, MiB, US

from ..conftest import make_qs


class TestMultiTenant:
    def test_four_tenants_compose(self):
        qs = make_qs(machines=[
            MachineSpec(name="m0", cores=16, dram_bytes=8 * GiB),
            MachineSpec(name="m1", cores=16, dram_bytes=8 * GiB),
        ], enable_global_scheduler=False)

        # Tenant 1: latency-critical service on m0 (HIGH priority).
        svc = LatencyService(qs.machines[0], arrival_rate=4000.0,
                             service_cpu=500 * US)
        svc.start()

        # Tenant 2: elastic cache (memory-only).
        cache = ElasticCache(qs, budget_bytes=256 * MiB, shards=4)
        for i in range(32):
            qs.run(until_event=cache.put(f"obj{i}", i, 4 * MiB))

        # Tenant 3: batch analytics over a sharded vector.
        vec = qs.sharded_vector(name="batch")
        events = [vec.append(i, 256 * KiB) for i in range(200)]
        qs.run(until_event=qs.sim.all_of(events))
        pool = qs.compute_pool(name="batch", initial_members=4)
        from repro.compute import for_each

        batch_done = for_each(pool, vec, work=1 * MS, task_elems=25)

        # Tenant 4: filler soaking up whatever is left.
        filler = FillerApp(qs, proclets=8, work_unit=100 * US)

        qs.run(until=0.5)

        # Everyone made progress.
        assert svc.requests_done > 1000
        assert svc.latency_summary().p99 < 3 * MS
        assert cache.hit_rate >= 0.0  # cache alive
        assert qs.run(until_event=cache.get("obj3")) == 3
        assert batch_done.triggered  # 200 ms of CPU across the cluster
        assert filler.units_done > 0

        # Accounting stayed coherent through all of it.
        reserved = sum(m.memory.used for m in qs.machines)
        footprints = sum(p.footprint
                         for p in qs.runtime._proclets.values())
        assert reserved == pytest.approx(footprints)

    def test_cluster_survives_tenant_teardown(self):
        qs = make_qs(enable_global_scheduler=False)
        cache = ElasticCache(qs, budget_bytes=64 * MiB, shards=2)
        qs.run(until_event=cache.put("k", 1, 1 * MiB))
        vec = qs.sharded_vector(name="v")
        qs.run(until_event=vec.append(0, 1 * MiB))
        used_mid = sum(m.memory.used for m in qs.machines)
        assert used_mid > 0
        cache.destroy()
        vec.destroy()
        qs.run(until=qs.sim.now + 0.05)
        leftover = sum(m.memory.used for m in qs.machines)
        assert leftover < used_mid


class TestMigrationStorm:
    def test_storm_preserves_everything(self):
        """50 proclets, hundreds of forced migrations, constant reads:
        no lost data, no stuck gates, coherent ledger."""
        qs = make_qs(machines=[
            MachineSpec(name=f"m{i}", cores=8, dram_bytes=4 * GiB)
            for i in range(3)
        ], enable_local_scheduler=False, enable_global_scheduler=False,
            enable_split_merge=False)
        rng = qs.sim.random.stream("storm")
        refs = []
        for i in range(50):
            ref = qs.spawn_memory(machine=qs.machines[i % 3])
            qs.run(until_event=ref.call("mp_put", 0, 1 * MiB, i))
            refs.append(ref)

        migrations = 0
        for round_ in range(6):
            movers = rng.sample(refs, 20)
            events = []
            for ref in movers:
                dst = qs.machines[rng.randrange(3)]
                if dst is not ref.machine:
                    events.append(qs.runtime.migrate(ref.proclet, dst))
            for ev in events:
                try:
                    qs.run(until_event=ev)
                    migrations += 1
                except MigrationFailed:
                    pass
            # Interleave reads mid-storm.
            probe = refs[rng.randrange(50)]
            idx = refs.index(probe)
            assert qs.run(until_event=probe.call("mp_get", 0)) == idx

        assert migrations > 50
        for i, ref in enumerate(refs):
            assert ref.proclet.status is ProcletStatus.RUNNING
            assert qs.run(until_event=ref.call("mp_get", 0)) == i
        reserved = sum(m.memory.used for m in qs.machines)
        footprints = sum(p.footprint
                         for p in qs.runtime._proclets.values())
        assert reserved == pytest.approx(footprints)
