"""Tests for control-plane tracing."""

import pytest

from repro import Proclet, Task
from repro.cluster import Priority
from repro.sim import Simulator
from repro.trace import TraceEvent, Tracer
from repro.units import KiB, MiB, MS

from .conftest import make_qs


class TestTracerUnit:
    def test_emit_and_query(self):
        sim = Simulator()
        tr = Tracer(sim)
        tr.emit("a", "first", x=1)
        sim.timeout(1.0)
        sim.run()
        tr.emit("b", "second")
        assert len(tr) == 2
        assert [e.message for e in tr.by_category("a")] == ["first"]
        assert len(tr.since(0.5)) == 1
        assert tr.categories() == {"a": 1, "b": 1}

    def test_grep(self):
        tr = Tracer(Simulator())
        tr.emit("x", "hello world", target="m0")
        assert tr.grep("world")
        assert tr.grep("m0")
        assert not tr.grep("nope")

    def test_disabled_tracer_is_silent(self):
        tr = Tracer(Simulator(), enabled=False)
        tr.emit("x", "msg")
        assert len(tr) == 0

    def test_cap_drops_and_reports(self):
        tr = Tracer(Simulator(), max_events=2)
        for i in range(5):
            tr.emit("x", f"e{i}")
        assert len(tr) == 2
        assert tr.dropped == 3
        assert "dropped" in tr.dump()

    def test_event_str(self):
        e = TraceEvent(time=0.0012, category="migration",
                       message="p m0->m1", fields={"bytes": 10})
        s = str(e)
        assert "migration" in s and "bytes=10" in s

    def test_dump_empty(self):
        assert "empty" in Tracer(Simulator()).dump()


class TestTraceIntegration:
    def test_migration_emits_trace(self, qs_quiet):
        qs = qs_quiet
        ref = qs.spawn_memory(machine=qs.machines[0])
        qs.run(until_event=ref.call("mp_put", 0, 1 * MiB, None))
        qs.run(until_event=qs.runtime.migrate(ref.proclet,
                                              qs.machines[1]))
        events = qs.runtime.tracer.by_category("migration")
        assert len(events) == 1
        assert "m0->m1" in events[0].message
        assert events[0].fields["bytes"] > 1 * MiB

    def test_local_scheduler_decision_traced(self):
        qs = make_qs(enable_global_scheduler=False,
                     enable_split_merge=False)
        m0 = qs.machines[0]
        ref = qs.spawn_compute(machine=m0)
        ref.call("cp_submit", Task(work=100.0, done=qs.sim.event()))
        qs.run(until=2 * MS)
        m0.cpu.hold(threads=8.0, priority=Priority.HIGH)
        qs.run(until=qs.sim.now + 5 * MS)
        decisions = qs.runtime.tracer.by_category("sched-local")
        assert decisions
        assert "cpu-starvation" in decisions[0].message

    def test_split_traced_with_cause_chain(self):
        """The trace answers 'why is this data on two machines?'"""
        qs = make_qs(max_shard_bytes=1 * MiB, min_shard_bytes=64 * KiB,
                     enable_local_scheduler=False,
                     enable_global_scheduler=False)
        m = qs.sharded_map()
        for i in range(48):
            qs.run(until_event=m.put(f"k{i:03d}", None, 64 * KiB))
        qs.run(until=qs.sim.now + 0.1)
        splits = qs.runtime.tracer.by_category("split")
        assert splits
        assert any("moved_bytes" in e.fields for e in splits)
