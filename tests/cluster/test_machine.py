"""Unit tests for machine components: CPU, memory, NIC, GPU, storage."""

import pytest

from repro.cluster import (
    Cluster,
    GpuSpec,
    MachineSpec,
    OutOfMemory,
    OutOfStorage,
    Priority,
    StorageSpec,
    symmetric_cluster,
)
from repro.units import GiB, KiB, MiB, gbps


@pytest.fixture
def cluster():
    return Cluster(symmetric_cluster(2, cores=8, dram_bytes=4 * GiB))


class TestCpu:
    def test_run_completes_at_expected_time(self, cluster):
        m = cluster.machine(0)
        item = m.cpu.run(work=2.0, threads=1.0)
        cluster.run(until_event=item.done)
        assert cluster.sim.now == pytest.approx(2.0)

    def test_priority_preemption_signal(self, cluster):
        m = cluster.machine(0)
        hold = m.cpu.hold(threads=8.0, priority=Priority.HIGH)
        low = m.cpu.run(work=1.0, threads=1.0, priority=Priority.NORMAL)
        assert low.starved
        assert m.cpu.contended(Priority.NORMAL)
        assert m.cpu.free_cores(Priority.NORMAL) == pytest.approx(0.0)
        m.cpu.release(hold)
        assert not low.starved
        assert m.cpu.free_cores(Priority.NORMAL) == pytest.approx(7.0)

    def test_set_cores(self, cluster):
        m = cluster.machine(0)
        m.cpu.set_cores(2.0)
        assert m.cpu.cores == 2.0

    def test_utilization_accounting(self, cluster):
        m = cluster.machine(0)
        m.cpu.run(work=8.0, threads=8.0)  # 1s at full blast
        cluster.run(until=2.0)
        assert m.cpu.utilization_since(0.0) == pytest.approx(0.5)


class TestMemory:
    def test_reserve_release(self, cluster):
        mem = cluster.machine(0).memory
        mem.reserve(1 * GiB)
        assert mem.free == pytest.approx(3 * GiB)
        mem.release(1 * GiB)
        assert mem.free == pytest.approx(4 * GiB)

    def test_oom(self, cluster):
        mem = cluster.machine(0).memory
        with pytest.raises(OutOfMemory):
            mem.reserve(5 * GiB)

    def test_over_release_rejected(self, cluster):
        mem = cluster.machine(0).memory
        with pytest.raises(ValueError):
            mem.release(1.0)

    def test_watermark_fires_on_upward_crossing(self, cluster):
        mem = cluster.machine(0).memory
        fired = []
        mem.add_watermark(0.5, lambda m: fired.append(m.pressure))
        mem.reserve(1 * GiB)
        assert fired == []
        mem.reserve(1.5 * GiB)
        assert len(fired) == 1
        mem.reserve(0.5 * GiB)  # already above: no refire
        assert len(fired) == 1

    def test_bad_watermark(self, cluster):
        with pytest.raises(ValueError):
            cluster.machine(0).memory.add_watermark(0.0, lambda m: None)

    def test_peak_tracking(self, cluster):
        mem = cluster.machine(0).memory
        mem.reserve(2 * GiB)
        mem.release(2 * GiB)
        assert mem.peak_used == pytest.approx(2 * GiB)


class TestNicAndFabric:
    def test_transfer_time_latency_plus_bandwidth(self, cluster):
        src, dst = cluster.machines
        nbytes = 125 * MiB  # 1 Gbit; at 100 Gbit/s -> 10.49 ms
        ev = cluster.fabric.transfer(src, dst, nbytes)
        cluster.run(until_event=ev)
        expected = cluster.spec.network.latency + nbytes / gbps(100.0)
        assert cluster.sim.now == pytest.approx(expected, rel=1e-6)
        assert dst.nic.rx_bytes == nbytes

    def test_local_transfer_is_nearly_free(self, cluster):
        src = cluster.machine(0)
        ev = cluster.fabric.transfer(src, src, 1 * GiB)
        cluster.run(until_event=ev)
        assert cluster.sim.now < 1e-6

    def test_concurrent_transfers_share_bandwidth(self, cluster):
        src, dst = cluster.machines
        nbytes = gbps(100.0) / 10  # 0.1s alone
        a = cluster.fabric.transfer(src, dst, nbytes)
        b = cluster.fabric.transfer(src, dst, nbytes)
        cluster.run(until_event=cluster.sim.all_of([a, b]))
        # fair sharing: both take ~0.2s
        assert cluster.sim.now == pytest.approx(0.2, rel=1e-2)

    def test_rpc_cost_is_microseconds(self, cluster):
        cost = cluster.fabric.rpc_cost()
        assert 1e-6 < cost < 100e-6

    def test_negative_transfer_rejected(self, cluster):
        src, dst = cluster.machines
        with pytest.raises(ValueError):
            cluster.fabric.transfer(src, dst, -1)


class TestGpuPool:
    @pytest.fixture
    def gpu_cluster(self):
        spec = MachineSpec(name="g0", cores=8, dram_bytes=4 * GiB,
                           gpus=GpuSpec(count=4, batch_time=0.01))
        from repro.cluster import ClusterSpec
        return Cluster(ClusterSpec(machines=[spec]))

    def test_batches_consume_at_service_rate(self, gpu_cluster):
        gpus = gpu_cluster.machine(0).gpus
        assert gpus.service_rate == pytest.approx(400.0)
        for _ in range(8):
            gpus.train_batch()
        gpu_cluster.run(until=0.1)
        assert gpus.batches_done == 8
        # 8 batches on 4 GPUs at 10ms each -> 2 waves -> done at 20ms

    def test_resize_notifies(self, gpu_cluster):
        gpus = gpu_cluster.machine(0).gpus
        seen = []
        gpus.on_resize(seen.append)
        gpus.resize(8)
        assert seen == [8]
        assert gpus.count == 8
        gpus.resize(8)  # no-op
        assert seen == [8]

    def test_resize_negative_rejected(self, gpu_cluster):
        with pytest.raises(ValueError):
            gpu_cluster.machine(0).gpus.resize(-1)


class TestStorageDevice:
    @pytest.fixture
    def disk_cluster(self):
        from repro.cluster import ClusterSpec
        spec = MachineSpec(
            name="s0", cores=4, dram_bytes=GiB,
            storage=StorageSpec(capacity_bytes=10 * GiB, iops=1000.0),
        )
        return Cluster(ClusterSpec(machines=[spec]))

    def test_capacity_ledger(self, disk_cluster):
        disk = disk_cluster.machine(0).storage
        disk.reserve(4 * GiB)
        assert disk.free == pytest.approx(6 * GiB)
        with pytest.raises(OutOfStorage):
            disk.reserve(7 * GiB)
        disk.release(4 * GiB)

    def test_read_takes_iops_time(self, disk_cluster):
        disk = disk_cluster.machine(0).storage
        sim = disk_cluster.sim
        p = sim.process(disk.read(4 * KiB))
        sim.run(until_event=p)
        assert sim.now >= 1.0 / 1000.0  # at least one IOPS slot
        assert disk.reads == 1

    def test_write_accounts(self, disk_cluster):
        disk = disk_cluster.machine(0).storage
        sim = disk_cluster.sim
        p = sim.process(disk.write(1 * MiB))
        sim.run(until_event=p)
        assert disk.writes == 1


class TestCluster:
    def test_lookup_by_name_and_id(self, cluster):
        assert cluster.machine(0) is cluster.machine("m0")
        assert cluster.machine(1).name == "m1"

    def test_totals(self, cluster):
        assert cluster.total_cores == 16
        assert cluster.total_free_memory == pytest.approx(8 * GiB)

    def test_machine_hash_eq(self, cluster):
        a, b = cluster.machines
        assert a != b
        assert len({a, b, cluster.machine(0)}) == 2
