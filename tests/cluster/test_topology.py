"""Unit tests for cluster specs."""

import pytest

from repro.cluster import (
    ClusterSpec,
    GpuSpec,
    MachineSpec,
    NetworkSpec,
    StorageSpec,
    symmetric_cluster,
)
from repro.units import GiB, gbps


class TestMachineSpec:
    def test_valid(self):
        m = MachineSpec(name="a", cores=8, dram_bytes=4 * GiB)
        assert m.nic_bandwidth == gbps(100.0)
        assert m.gpus.count == 0

    @pytest.mark.parametrize("kw", [
        dict(cores=0), dict(cores=-1),
        dict(dram_bytes=0), dict(nic_bandwidth=0),
    ])
    def test_invalid(self, kw):
        base = dict(name="a", cores=8, dram_bytes=4 * GiB)
        base.update(kw)
        with pytest.raises(ValueError):
            MachineSpec(**base)

    def test_gpu_spec_validation(self):
        with pytest.raises(ValueError):
            GpuSpec(count=-1)
        with pytest.raises(ValueError):
            GpuSpec(count=1, batch_time=0)

    def test_storage_spec_validation(self):
        with pytest.raises(ValueError):
            StorageSpec(capacity_bytes=-1)
        with pytest.raises(ValueError):
            StorageSpec(capacity_bytes=1, iops=0)


class TestClusterSpec:
    def test_totals(self):
        spec = symmetric_cluster(3, cores=4, dram_bytes=2 * GiB)
        assert spec.total_cores == 12
        assert spec.total_dram == 6 * GiB

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(machines=[])

    def test_duplicate_names_rejected(self):
        m = MachineSpec(name="a", cores=1, dram_bytes=GiB)
        with pytest.raises(ValueError):
            ClusterSpec(machines=[m, m])

    def test_network_spec_validation(self):
        with pytest.raises(ValueError):
            NetworkSpec(latency=-1)
        with pytest.raises(ValueError):
            NetworkSpec(local_call_overhead=-1)
