"""Edge tests for fabric messaging and cluster passthroughs."""

import pytest

from repro.cluster import Cluster, symmetric_cluster
from repro.units import GiB, MiB


@pytest.fixture
def cluster():
    return Cluster(symmetric_cluster(2, cores=4, dram_bytes=2 * GiB))


class TestFabricMessages:
    def test_message_pays_oneway_delay(self, cluster):
        src, dst = cluster.machines
        ev = cluster.fabric.message(src, dst)
        cluster.run(until_event=ev)
        assert cluster.sim.now >= cluster.spec.network.latency

    def test_local_message_near_free(self, cluster):
        src = cluster.machine(0)
        ev = cluster.fabric.message(src, src)
        cluster.run(until_event=ev)
        assert cluster.sim.now < 1e-6

    def test_rpc_cost_grows_with_payload(self, cluster):
        small = cluster.fabric.rpc_cost(req_bytes=128, resp_bytes=128)
        big = cluster.fabric.rpc_cost(req_bytes=10**6, resp_bytes=10**6)
        assert big > small

    def test_transfer_counters(self, cluster):
        src, dst = cluster.machines
        cluster.run(until_event=cluster.fabric.transfer(src, dst, 1 * MiB))
        assert cluster.fabric.total_transfers == 1
        assert cluster.fabric.total_bytes_moved == 1 * MiB
        assert src.nic.tx_bytes == 1 * MiB

    def test_zero_byte_transfer_completes(self, cluster):
        src, dst = cluster.machines
        ev = cluster.fabric.transfer(src, dst, 0)
        cluster.run(until_event=ev)
        assert cluster.sim.now >= cluster.spec.network.latency


class TestClusterPassthrough:
    def test_run_until_event_returns_value(self, cluster):
        ev = cluster.sim.timeout(1.0, value="done")
        assert cluster.run(until_event=ev) == "done"

    def test_repr(self, cluster):
        assert "Cluster" in repr(cluster)
        assert "Nic" in repr(cluster.machine(0).nic)
        assert "Memory" in repr(cluster.machine(0).memory)
        assert "Cpu" in repr(cluster.machine(0).cpu)
