"""Tests for storage proclets and the flat storage abstraction."""

import pytest

from repro import MachineSpec, StorageSpec
from repro.cluster import OutOfStorage
from repro.units import GiB, KiB, MiB

from ..conftest import make_qs, storage_machine


@pytest.fixture
def qs():
    return make_qs(machines=[
        storage_machine(name="s0", capacity=8 * GiB, iops=10_000),
        storage_machine(name="s1", capacity=8 * GiB, iops=10_000),
    ], enable_local_scheduler=False, enable_global_scheduler=False,
        enable_split_merge=False)


class TestStorageProclet:
    def test_write_read_roundtrip(self, qs):
        ref = qs.spawn_storage(name="sp")
        qs.sim.run(until_event=ref.call("sp_write", "obj", 1 * MiB, "data"))
        assert qs.sim.run(until_event=ref.call("sp_read", "obj")) == "data"
        assert ref.proclet.reads == 1
        assert ref.proclet.writes == 1

    def test_write_charges_device_capacity(self, qs):
        ref = qs.spawn_storage(machine=qs.machines[0])
        device = qs.machines[0].storage
        free0 = device.free
        qs.sim.run(until_event=ref.call("sp_write", "a", 100 * MiB, None))
        assert device.free == pytest.approx(free0 - 100 * MiB)

    def test_overwrite_releases_old_bytes(self, qs):
        ref = qs.spawn_storage(machine=qs.machines[0])
        device = qs.machines[0].storage
        free0 = device.free
        qs.sim.run(until_event=ref.call("sp_write", "a", 100 * MiB, None))
        qs.sim.run(until_event=ref.call("sp_write", "a", 10 * MiB, None))
        assert device.free == pytest.approx(free0 - 10 * MiB)
        assert ref.proclet.object_count == 1

    def test_delete_releases(self, qs):
        ref = qs.spawn_storage(machine=qs.machines[0])
        device = qs.machines[0].storage
        free0 = device.free
        qs.sim.run(until_event=ref.call("sp_write", "a", 1 * MiB, None))
        qs.sim.run(until_event=ref.call("sp_delete", "a"))
        assert device.free == pytest.approx(free0)

    def test_read_missing_fails(self, qs):
        ref = qs.spawn_storage()
        with pytest.raises(KeyError):
            qs.sim.run(until_event=ref.call("sp_read", "ghost"))

    def test_capacity_exhaustion(self, qs):
        ref = qs.spawn_storage(machine=qs.machines[0])
        with pytest.raises(OutOfStorage):
            qs.sim.run(until_event=ref.call("sp_write", "big",
                                            9 * GiB, None))

    def test_iops_limit_paces_small_reads(self, qs):
        ref = qs.spawn_storage(machine=qs.machines[0])
        qs.sim.run(until_event=ref.call("sp_write", "k", 4 * KiB, None))
        t0 = qs.sim.now
        events = [ref.call("sp_read", "k") for _ in range(100)]
        qs.sim.run(until_event=qs.sim.all_of(events))
        # 100 ops at 10k IOPS >= 10ms
        assert qs.sim.now - t0 >= 0.01


class TestFlatStorage:
    def test_spreads_proclets_over_devices(self, qs):
        fs = qs.flat_storage(proclets_per_device=4)
        machines = {ref.machine.name for ref in fs.proclets}
        assert machines == {"s0", "s1"}
        assert len(fs.proclets) == 8

    def test_write_read_delete(self, qs):
        fs = qs.flat_storage()
        qs.sim.run(until_event=fs.write("obj-1", 1 * MiB, "hello"))
        assert qs.sim.run(until_event=fs.read("obj-1")) == "hello"
        assert qs.sim.run(until_event=fs.contains("obj-1")) is True
        qs.sim.run(until_event=fs.delete("obj-1"))
        assert qs.sim.run(until_event=fs.contains("obj-1")) is False

    def test_objects_spread_by_hash(self, qs):
        fs = qs.flat_storage()
        events = [fs.write(f"k{i}", 64 * KiB, None) for i in range(64)]
        qs.sim.run(until_event=qs.sim.all_of(events))
        populated = sum(1 for ref in fs.proclets
                        if ref.proclet.object_count > 0)
        assert populated >= len(fs.proclets) // 2
        assert fs.object_count == 64

    def test_aggregate_iops_speeds_up_reads(self):
        """The §3.2 claim: spreading combines capacity AND IOPS."""

        def timed_reads(n_machines):
            qs = make_qs(machines=[
                storage_machine(name=f"s{i}", capacity=8 * GiB, iops=1000)
                for i in range(n_machines)
            ], enable_local_scheduler=False, enable_global_scheduler=False,
                enable_split_merge=False)
            fs = qs.flat_storage()
            writes = [fs.write(f"k{i}", 4 * KiB, None) for i in range(64)]
            qs.sim.run(until_event=qs.sim.all_of(writes))
            t0 = qs.sim.now
            reads = [fs.read(f"k{i}") for i in range(64)]
            qs.sim.run(until_event=qs.sim.all_of(reads))
            return qs.sim.now - t0

        one = timed_reads(1)
        four = timed_reads(4)
        assert four < one / 2

    def test_stats(self, qs):
        fs = qs.flat_storage()
        assert fs.total_capacity == pytest.approx(16 * GiB)
        assert fs.aggregate_iops == pytest.approx(20_000)

    def test_requires_storage_machines(self):
        qs = make_qs(enable_local_scheduler=False,
                     enable_global_scheduler=False,
                     enable_split_merge=False)
        with pytest.raises(RuntimeError):
            qs.flat_storage()

    def test_validation(self, qs):
        with pytest.raises(ValueError):
            qs.flat_storage(proclets_per_device=0)

    def test_destroy(self, qs):
        fs = qs.flat_storage()
        qs.sim.run(until_event=fs.write("k", 1 * MiB, None))
        fs.destroy()
        assert fs.proclets == []
