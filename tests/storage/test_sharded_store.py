"""Tests for the sharded persistent store (§3.3 applied to storage)."""

import pytest

from repro.storage import ShardedStore
from repro.units import GiB, MiB

from ..conftest import make_qs, storage_machine


@pytest.fixture
def qs():
    return make_qs(machines=[
        storage_machine(name="s0", capacity=16 * GiB, iops=50_000),
        storage_machine(name="s1", capacity=16 * GiB, iops=50_000),
    ], enable_local_scheduler=False, enable_global_scheduler=False,
        enable_split_merge=False)


def store_for(qs, max_mb=64, min_mb=8):
    return ShardedStore(qs, name="st", max_shard_bytes=max_mb * MiB,
                        min_shard_bytes=min_mb * MiB)


class TestBasics:
    def test_write_read_roundtrip(self, qs):
        st = store_for(qs)
        qs.run(until_event=st.write("k1", 4 * MiB, "payload"))
        assert qs.run(until_event=st.read("k1")) == "payload"
        assert st.total_objects == 1

    def test_delete_releases_device(self, qs):
        st = store_for(qs)
        dev = st.shards[0].ref.machine.storage
        free0 = dev.free
        qs.run(until_event=st.write("k", 8 * MiB, None))
        qs.run(until_event=st.delete("k"))
        assert dev.free == pytest.approx(free0)
        with pytest.raises(KeyError):
            qs.run(until_event=st.read("k"))

    def test_overwrite_adjusts_device(self, qs):
        st = store_for(qs)
        dev = st.shards[0].ref.machine.storage
        free0 = dev.free
        qs.run(until_event=st.write("k", 8 * MiB, None))
        qs.run(until_event=st.write("k", 2 * MiB, None))
        assert dev.free == pytest.approx(free0 - 2 * MiB)

    def test_validation(self, qs):
        with pytest.raises(ValueError):
            ShardedStore(qs, max_shard_bytes=1.0, min_shard_bytes=2.0)

    def test_io_takes_device_time(self, qs):
        st = store_for(qs)
        t0 = qs.sim.now
        qs.run(until_event=st.write("k", 64 * MiB, None))
        write_bw = st.shards[0].ref.machine.storage.spec.write_bandwidth
        assert qs.sim.now - t0 >= 64 * MiB / write_bw


class TestStorageSplitting:
    def test_ingest_splits_shards(self, qs):
        st = store_for(qs, max_mb=32, min_mb=4)
        for i in range(12):
            qs.run(until_event=st.write(f"k{i:03d}", 4 * MiB, i))
        qs.run(until=qs.sim.now + 1.0)
        assert st.shard_count >= 2
        assert st.splits >= 1
        for shard in st.shards:
            assert shard.proclet.stored_bytes <= 33 * MiB
        # all readable after splits
        for i in range(12):
            assert qs.run(until_event=st.read(f"k{i:03d}")) == i

    def test_split_spreads_across_devices(self, qs):
        st = store_for(qs, max_mb=32, min_mb=4)
        for i in range(20):
            qs.run(until_event=st.write(f"k{i:03d}", 4 * MiB, i))
        qs.run(until=qs.sim.now + 2.0)
        machines = {m.name for m in st.shard_machines()}
        assert machines == {"s0", "s1"}, \
            "splits should land on the other device"

    def test_deletions_trigger_merge(self, qs):
        st = store_for(qs, max_mb=32, min_mb=8)
        for i in range(16):
            qs.run(until_event=st.write(f"k{i:03d}", 4 * MiB, i))
        qs.run(until=qs.sim.now + 2.0)
        shards_before = st.shard_count
        assert shards_before >= 2
        for i in range(14):
            qs.run(until_event=st.delete(f"k{i:03d}"))
        qs.run(until=qs.sim.now + 2.0)
        assert st.shard_count < shards_before
        assert st.merges >= 1
        for i in range(14, 16):
            assert qs.run(until_event=st.read(f"k{i:03d}")) == i

    def test_bytes_conserved_across_churn(self, qs):
        st = store_for(qs, max_mb=16, min_mb=2)
        total = 0
        for i in range(20):
            qs.run(until_event=st.write(f"k{i:03d}", 2 * MiB, i))
            total += 2 * MiB
        qs.run(until=qs.sim.now + 2.0)
        assert st.total_bytes == pytest.approx(total)
        device_used = sum(m.storage.used for m in qs.machines)
        assert device_used == pytest.approx(total)

    def test_destroy(self, qs):
        st = store_for(qs)
        qs.run(until_event=st.write("k", 1 * MiB, None))
        st.destroy()
        assert st.shard_count == 0
