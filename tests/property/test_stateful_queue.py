"""Stateful property test: the sharded queue under churn.

Random pushes, pops, shard migrations, and time advancement; checks
element conservation (multiset in == multiset out + still queued),
byte-ledger consistency, and shard-count recovery after bursts.
"""

import collections

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.runtime import MigrationFailed, ProcletStatus
from repro.units import KiB

from ..conftest import make_qs


class ShardedQueueMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.qs = make_qs(max_shard_bytes=256 * KiB,
                          min_shard_bytes=16 * KiB,
                          enable_local_scheduler=False,
                          enable_global_scheduler=False)
        self.queue = self.qs.sharded_queue(name="q", initial_shards=2)
        self.next_id = 0
        self.outstanding = collections.Counter()
        self.popped = collections.Counter()

    @rule(kib=st.integers(1, 64), burst=st.integers(1, 8))
    def push_burst(self, kib, burst):
        for _ in range(burst):
            vid = self.next_id
            self.next_id += 1
            self.qs.sim.run(
                until_event=self.queue.push(vid, kib * KiB))
            self.outstanding[vid] += 1

    @rule(n=st.integers(1, 6))
    def pop_some(self, n):
        for _ in range(n):
            if not self.outstanding:
                return
            value = self.qs.sim.run(until_event=self.queue.try_pop())
            if value is None:
                return
            assert self.outstanding[value] == 1, \
                f"popped {value} not outstanding exactly once"
            del self.outstanding[value]
            self.popped[value] += 1

    @rule(idx=st.integers(0, 7))
    def migrate_a_shard(self, idx):
        live = [s for s in self.queue.shards
                if s.proclet.status is ProcletStatus.RUNNING]
        if not live:
            return
        shard = live[idx % len(live)]
        dst = next(m for m in self.qs.machines
                   if m is not shard.machine)
        try:
            self.qs.sim.run(
                until_event=self.qs.runtime.migrate(shard.proclet, dst))
        except MigrationFailed:
            pass

    @rule(dt=st.floats(0.005, 0.05))
    def advance(self, dt):
        self.qs.sim.run(until=self.qs.sim.now + dt)

    # -- invariants ------------------------------------------------------------
    @invariant()
    def length_matches_outstanding(self):
        if not hasattr(self, "queue"):
            return
        assert self.queue.length == len(self.outstanding)

    @invariant()
    def no_value_popped_twice(self):
        if not hasattr(self, "popped"):
            return
        assert all(n == 1 for n in self.popped.values())

    @invariant()
    def buffered_bytes_match_ledger(self):
        if not hasattr(self, "queue"):
            return
        total = sum(s.proclet.heap_bytes for s in self.queue.shards
                    if s.proclet.status is not ProcletStatus.DEAD)
        # heap bytes equal the sum of queued element sizes; at minimum
        # the ledger must be non-negative and zero when empty.
        if not self.outstanding:
            assert total == pytest.approx(0.0)


TestShardedQueueStateful = ShardedQueueMachine.TestCase
TestShardedQueueStateful.settings = settings(
    max_examples=12, stateful_step_count=20, deadline=None)
