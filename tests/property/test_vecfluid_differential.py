"""Differential property tests for the vectorized fluid engine.

The vector core (``repro.sim.vecfluid``) must be *invisible*: under any
interleaving of submit / cancel / detach / attach / ``set_demand`` /
``set_capacity`` / ``set_priority`` / flush, every rate it assigns must
be bit-identical (``==``, not approx) to both the brute-force water-fill
oracle and the pure-python scalar engine — and when virtual time runs,
completions must fire at the same instants in the same order.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import FluidScheduler, Simulator
from repro.sim.fluid import vector_supported
from tests.property.test_incremental_fluid import brute_force_rates

pytestmark = pytest.mark.skipif(
    not vector_supported(), reason="numpy not installed: no vector engine")


_ops = st.lists(
    st.one_of(
        st.tuples(st.just("add"),
                  st.floats(0.1, 4.0),         # demand
                  st.integers(0, 3)),           # priority
        st.tuples(st.just("remove"), st.integers(0, 1 << 20)),
        st.tuples(st.just("detach"), st.integers(0, 1 << 20)),
        st.tuples(st.just("attach"), st.integers(0, 1 << 20)),
        st.tuples(st.just("set_demand"),
                  st.integers(0, 1 << 20), st.floats(0.1, 4.0)),
        st.tuples(st.just("set_capacity"), st.floats(0.5, 8.0)),
        st.tuples(st.just("set_priority"),
                  st.integers(0, 1 << 20), st.integers(0, 3)),
        st.tuples(st.just("flush"),),
    ),
    min_size=1, max_size=50,
)


def _apply(sched, held, parked, op):
    kind = op[0]
    if kind == "add":
        held.append(sched.hold(demand=op[1], priority=op[2]))
    elif kind == "remove":
        if held:
            sched.cancel(held.pop(op[1] % len(held)))
    elif kind == "detach":
        if held:
            it = held.pop(op[1] % len(held))
            sched.detach(it)
            parked.append(it)
    elif kind == "attach":
        if parked:
            it = parked.pop(op[1] % len(parked))
            sched.attach(it)
            held.append(it)
    elif kind == "set_demand":
        if held:
            sched.set_demand(held[op[1] % len(held)], op[2])
    elif kind == "set_capacity":
        sched.set_capacity(op[1])
    elif kind == "set_priority":
        if held:
            sched.set_priority(held[op[1] % len(held)], op[2])
    elif kind == "flush":
        sched.sync()


@settings(max_examples=60, deadline=None)
@given(ops=_ops)
def test_vector_matches_brute_force_water_fill(ops):
    sim = Simulator()
    sched = FluidScheduler(sim, 4.0, name="cpu", vector=True)
    assert sched.vectorized
    held, parked = [], []
    for op in ops:
        _apply(sched, held, parked, op)
        if op[0] == "flush":
            expected, load = brute_force_rates(sched)
            for it in held:
                assert it.rate == expected[it]
            assert sched.load == load
    sched.sync()
    expected, load = brute_force_rates(sched)
    for it in held:
        assert it.rate == expected[it]
    assert sched.load == load
    # Detached handles stay readable off-array.
    for it in parked:
        assert it.rate == 0.0
        assert it.remaining is math.inf


@settings(max_examples=40, deadline=None)
@given(ops=_ops)
def test_vector_matches_scalar_engine_exactly(ops):
    """Twin-run: the same op sequence on the scalar and vector engines
    yields bit-identical rates, aggregates and free-capacity curves."""
    state = []
    for vector in (False, True):
        sim = Simulator()
        sched = FluidScheduler(sim, 4.0, name="cpu", vector=vector)
        assert sched.vectorized is vector
        held, parked = [], []
        trace = []
        for op in ops:
            _apply(sched, held, parked, op)
            if op[0] == "flush":
                trace.append([it.rate for it in held])
        sched.sync()
        trace.append([it.rate for it in held])
        trace.append(sched.load)
        trace.append(sched.demand_total)
        trace.append([sched.free_capacity(priority=p) for p in range(5)])
        state.append(trace)
    assert state[0] == state[1]


_jobs = st.lists(
    st.tuples(
        st.floats(0.05, 2.0),    # work
        st.floats(0.1, 3.0),     # demand
        st.integers(0, 2),       # priority
        st.floats(0.0, 0.5),     # submit delay from previous job
    ),
    min_size=1, max_size=25,
)


def _run_timeline(vector, jobs, caps):
    """Drive finite jobs to completion, recording every completion's
    (virtual time, name, priority) and each item's final state."""
    sim = Simulator()
    sched = FluidScheduler(sim, 2.5, name="cpu", vector=vector)
    finished = []

    def driver():
        items = []
        for i, (work, demand, prio, gap) in enumerate(jobs):
            it = sched.submit(work=work, demand=demand, priority=prio,
                              name=f"j{i}")
            it.done.subscribe(
                lambda ev, it=it: finished.append(
                    (sim.now, it.name, it.priority)))
            items.append(it)
            if caps and i % 3 == 2:
                sched.set_capacity(caps[i % len(caps)])
            yield sim.timeout(gap)

    sim.process(driver())
    sim.run(until=60.0)
    return finished, sim.now, sim.processed_events


@settings(max_examples=25, deadline=None)
@given(jobs=_jobs,
       caps=st.lists(st.floats(0.5, 6.0), min_size=0, max_size=4))
def test_vector_completion_timeline_is_bit_identical(jobs, caps):
    scalar = _run_timeline(False, jobs, caps)
    vector = _run_timeline(True, jobs, caps)
    assert scalar == vector
