"""Property-based chaos testing: random seeded fault plans against
random workload shapes, with the invariant checker attached.

Two properties carry the suite:

* **safety** — whatever the fault plan, every global invariant holds at
  every event (``run_chaos`` raises on the first violation, so simply
  completing is the assertion);
* **determinism** — replaying the same seed yields a bit-identical
  digest (trace, counters, task counts).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import ChaosConfig, RandomFaultPlan, run_chaos
from repro.units import GiB

_configs = st.builds(
    ChaosConfig,
    seed=st.integers(0, 2**32 - 1),
    machines=st.integers(2, 4),
    duration=st.just(0.25),
    crash_probability=st.floats(0.2, 1.0),
    migration_flakiness=st.floats(0.0, 1.0),
    invariant_stride=st.sampled_from([1, 3]),
)


@settings(max_examples=10, deadline=None)
@given(config=_configs)
def test_invariants_hold_under_random_fault_plans(config):
    result = run_chaos(config)  # raises InvariantViolation on any breach
    assert result.invariant_checks > 0
    assert result.machines_crashed >= 1  # ensure_crash guarantees one


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_replay_with_same_seed_is_bit_identical(seed):
    config = ChaosConfig(seed=seed, machines=3, duration=0.25)
    first = run_chaos(config)
    replay = run_chaos(config)
    assert first.digest() == replay.digest()
    assert first.trace_lines == replay.trace_lines


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    n_machines=st.integers(1, 6),
    duration=st.floats(0.1, 10.0),
    crash_probability=st.floats(0.0, 1.0),
)
def test_fault_plans_replay_and_respect_bounds(seed, n_machines, duration,
                                               crash_probability):
    """Plan expansion alone (no simulation) is pure and bounded."""
    machines = [f"m{i}" for i in range(n_machines)]
    plan = RandomFaultPlan(seed=seed, machines=machines, duration=duration,
                           crash_probability=crash_probability)
    schedule = plan.schedule(4 * GiB)
    assert schedule == plan.schedule(4 * GiB)
    for fault in schedule:
        assert 0.0 <= fault.at <= duration
    crashed = {f.machine for f in schedule
               if type(f).__name__ == "MachineCrash"}
    assert len(crashed) < max(1, len(machines)) or not crashed
