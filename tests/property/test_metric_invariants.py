"""Property-based tests for metric and memory-ledger invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import OutOfMemory
from repro.metrics import Summary, TimeSeries, percentile
from repro.units import MiB

from ..conftest import make_qs


class TestTimeSeriesProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 100), st.floats(-1e6, 1e6)),
                    min_size=1, max_size=100))
    def test_bucket_sums_conserve_total(self, samples):
        samples.sort(key=lambda tv: tv[0])
        ts = TimeSeries("x")
        for t, v in samples:
            ts.record(t, v)
        buckets = ts.bucket_sums(0.0, 101.0, 7.3)
        assert sum(v for _t, v in buckets) == pytest.approx(
            sum(v for _t, v in samples), rel=1e-9, abs=1e-6)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(-1e5, 1e5), min_size=1, max_size=200),
           st.floats(0, 100))
    def test_percentile_bounded_and_monotone(self, xs, p):
        v = percentile(xs, p)
        assert min(xs) <= v <= max(xs)
        assert percentile(xs, 0) == min(xs)
        assert percentile(xs, 100) == max(xs)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(-1e5, 1e5), min_size=1, max_size=100))
    def test_summary_orderings(self, xs):
        s = Summary.of(xs)
        assert s.minimum <= s.p50 <= s.p90 <= s.p99 <= s.maximum
        assert s.minimum <= s.mean <= s.maximum

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 50), st.floats(-100, 100)),
                    min_size=1, max_size=50))
    def test_mean_over_bounded_by_extremes(self, samples):
        samples.sort(key=lambda tv: tv[0])
        ts = TimeSeries("x")
        for t, v in samples:
            ts.record(t, v)
        m = ts.mean_over(0.0, 60.0)
        lo = min(0.0, min(v for _t, v in samples))
        hi = max(0.0, max(v for _t, v in samples))
        assert lo - 1e-9 <= m <= hi + 1e-9


class TestMemoryLedgerProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.one_of(
        st.tuples(st.just("reserve"), st.integers(1, 512)),
        st.tuples(st.just("release"), st.integers(1, 512)),
    ), min_size=1, max_size=60))
    def test_ledger_never_corrupts(self, ops):
        qs = make_qs(enable_local_scheduler=False,
                     enable_global_scheduler=False,
                     enable_split_merge=False)
        mem = qs.machines[0].memory
        shadow = 0.0
        for kind, mib in ops:
            nbytes = mib * MiB
            if kind == "reserve":
                if nbytes <= mem.free:
                    mem.reserve(nbytes)
                    shadow += nbytes
                else:
                    with pytest.raises(OutOfMemory):
                        mem.reserve(nbytes)
            else:
                if nbytes <= shadow:
                    mem.release(nbytes)
                    shadow -= nbytes
                else:
                    with pytest.raises(ValueError):
                        mem.release(nbytes)
            assert mem.used == pytest.approx(shadow)
            assert 0.0 <= mem.used <= mem.capacity
            assert 0.0 <= mem.pressure <= 1.0


class TestDeterminismProperty:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**31))
    def test_same_seed_same_trajectory(self, seed):
        """Two runs with one seed produce identical event timelines."""

        def run():
            qs = make_qs(enable_local_scheduler=False,
                         enable_global_scheduler=False)
            rng = qs.sim.random.stream("wl")
            vec = qs.sharded_vector(name="v")
            events = [vec.append(i, int(rng.random() * 256 + 1) * 1024)
                      for i in range(50)]
            qs.sim.run(until_event=qs.sim.all_of(events))
            qs.sim.run(until=qs.sim.now + 0.05)
            return (qs.sim.now, qs.sim.processed_events,
                    vec.shard_count, vec.total_bytes)

        import random as _random

        state = _random.getstate()
        a = run()
        _random.seed(seed)  # perturb global RNG; must not matter
        b = run()
        _random.setstate(state)
        assert a == b
