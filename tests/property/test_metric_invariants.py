"""Property-based tests for metric and memory-ledger invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import OutOfMemory
from repro.metrics import (Counter, Gauge, Summary, TimeSeries, merge_series,
                           percentile)
from repro.units import MiB

from ..conftest import make_qs


class TestTimeSeriesProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 100), st.floats(-1e6, 1e6)),
                    min_size=1, max_size=100))
    def test_bucket_sums_conserve_total(self, samples):
        samples.sort(key=lambda tv: tv[0])
        ts = TimeSeries("x")
        for t, v in samples:
            ts.record(t, v)
        buckets = ts.bucket_sums(0.0, 101.0, 7.3)
        assert sum(v for _t, v in buckets) == pytest.approx(
            sum(v for _t, v in samples), rel=1e-9, abs=1e-6)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(-1e5, 1e5), min_size=1, max_size=200),
           st.floats(0, 100))
    def test_percentile_bounded_and_monotone(self, xs, p):
        v = percentile(xs, p)
        assert min(xs) <= v <= max(xs)
        assert percentile(xs, 0) == min(xs)
        assert percentile(xs, 100) == max(xs)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(-1e5, 1e5), min_size=1, max_size=100))
    def test_summary_orderings(self, xs):
        s = Summary.of(xs)
        assert s.minimum <= s.p50 <= s.p90 <= s.p99 <= s.maximum
        assert s.minimum <= s.mean <= s.maximum

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(-1e5, 1e5), min_size=2, max_size=100),
           st.floats(0, 100), st.floats(0, 100))
    def test_percentile_monotone_in_p(self, xs, p1, p2):
        if p1 > p2:
            p1, p2 = p2, p1
        assert percentile(xs, p1) <= percentile(xs, p2)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 100), st.floats(-1e3, 1e3)),
                    min_size=1, max_size=60),
           st.floats(0.5, 20))
    def test_bucket_means_bounded_by_sample_extremes(self, samples, width):
        samples.sort(key=lambda tv: tv[0])
        ts = TimeSeries("x")
        for t, v in samples:
            ts.record(t, v)
        lo = min(0.0, min(v for _t, v in samples))
        hi = max(0.0, max(v for _t, v in samples))
        for _mid, m in ts.bucket_means(0.0, 101.0, width):
            assert lo - 1e-9 <= m <= hi + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 100), st.floats(0, 1e3)),
                    min_size=1, max_size=60))
    def test_counter_rate_conserves_total(self, events):
        events.sort(key=lambda tv: tv[0])
        c = Counter("x")
        for t, amount in events:
            c.add(t, amount)
        # rate * window length over a window covering every event must
        # recover the total exactly.
        assert c.rate_over(0.0, 101.0) * 101.0 == pytest.approx(
            c.total, rel=1e-9, abs=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 100), st.floats(-1e3, 1e3)),
                    min_size=1, max_size=40),
           st.floats(1, 99))
    def test_gauge_integral_additive_over_split(self, steps, cut):
        steps.sort(key=lambda tv: tv[0])
        g = Gauge("x")
        for t, v in steps:
            g.set(t, v)
        whole = g.integral_over(0.0, 100.0)
        parts = g.integral_over(0.0, cut) + g.integral_over(cut, 100.0)
        assert whole == pytest.approx(parts, rel=1e-9, abs=1e-6)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(
        st.lists(st.tuples(st.floats(0, 100), st.floats(-1e3, 1e3)),
                 max_size=30),
        min_size=1, max_size=5))
    def test_merge_series_preserves_samples_and_order(self, groups):
        series = []
        for samples in groups:
            samples.sort(key=lambda tv: tv[0])
            ts = TimeSeries("x")
            for t, v in samples:
                ts.record(t, v)
            series.append(ts)
        merged = merge_series(series)
        assert len(merged) == sum(len(s) for s in series)
        times = [t for t, _v in merged]
        assert times == sorted(times)
        assert sum(v for _t, v in merged) == pytest.approx(
            sum(v for s in series for _t, v in s), rel=1e-9, abs=1e-6)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 50), st.floats(-100, 100)),
                    min_size=1, max_size=50))
    def test_mean_over_bounded_by_extremes(self, samples):
        samples.sort(key=lambda tv: tv[0])
        ts = TimeSeries("x")
        for t, v in samples:
            ts.record(t, v)
        m = ts.mean_over(0.0, 60.0)
        lo = min(0.0, min(v for _t, v in samples))
        hi = max(0.0, max(v for _t, v in samples))
        assert lo - 1e-9 <= m <= hi + 1e-9


class TestMemoryLedgerProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.one_of(
        st.tuples(st.just("reserve"), st.integers(1, 512)),
        st.tuples(st.just("release"), st.integers(1, 512)),
    ), min_size=1, max_size=60))
    def test_ledger_never_corrupts(self, ops):
        qs = make_qs(enable_local_scheduler=False,
                     enable_global_scheduler=False,
                     enable_split_merge=False)
        mem = qs.machines[0].memory
        shadow = 0.0
        for kind, mib in ops:
            nbytes = mib * MiB
            if kind == "reserve":
                if nbytes <= mem.free:
                    mem.reserve(nbytes)
                    shadow += nbytes
                else:
                    with pytest.raises(OutOfMemory):
                        mem.reserve(nbytes)
            else:
                if nbytes <= shadow:
                    mem.release(nbytes)
                    shadow -= nbytes
                else:
                    with pytest.raises(ValueError):
                        mem.release(nbytes)
            assert mem.used == pytest.approx(shadow)
            assert 0.0 <= mem.used <= mem.capacity
            assert 0.0 <= mem.pressure <= 1.0


class TestDeterminismProperty:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**31))
    def test_same_seed_same_trajectory(self, seed):
        """Two runs with one seed produce identical event timelines."""

        def run():
            qs = make_qs(enable_local_scheduler=False,
                         enable_global_scheduler=False)
            rng = qs.sim.random.stream("wl")
            vec = qs.sharded_vector(name="v")
            events = [vec.append(i, int(rng.random() * 256 + 1) * 1024)
                      for i in range(50)]
            qs.sim.run(until_event=qs.sim.all_of(events))
            qs.sim.run(until=qs.sim.now + 0.05)
            return (qs.sim.now, qs.sim.processed_events,
                    vec.shard_count, vec.total_bytes)

        import random as _random

        state = _random.getstate()
        a = run()
        _random.seed(seed)  # perturb global RNG; must not matter
        b = run()
        _random.setstate(state)
        assert a == b
