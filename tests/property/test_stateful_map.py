"""Stateful property test: the sharded map vs a dict oracle.

Hypothesis drives arbitrary interleavings of puts, deletes, reads,
explicit shard migrations, and time advancement against one long-lived
map, checking after every step that the distributed structure and the
oracle agree and that system invariants hold.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.runtime import MigrationFailed, ProcletStatus
from repro.units import KiB

from ..conftest import make_qs

_KEYS = st.sampled_from([f"key{i:02d}" for i in range(40)])


class ShardedMapMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.qs = make_qs(max_shard_bytes=256 * KiB,
                          min_shard_bytes=32 * KiB,
                          enable_local_scheduler=False,
                          enable_global_scheduler=False)
        self.map = self.qs.sharded_map(name="kv")
        self.oracle = {}

    # -- operations --------------------------------------------------------
    @rule(key=_KEYS, value=st.integers(0, 10**6),
          kib=st.integers(1, 128))
    def put(self, key, value, kib):
        self.qs.sim.run(until_event=self.map.put(key, value, kib * KiB))
        self.oracle[key] = value

    @rule(key=_KEYS)
    def delete(self, key):
        ev = self.map.delete(key)
        if key in self.oracle:
            self.qs.sim.run(until_event=ev)
            del self.oracle[key]
        else:
            with pytest.raises(KeyError):
                self.qs.sim.run(until_event=ev)

    @rule(key=_KEYS)
    def read(self, key):
        ev = self.map.get(key)
        if key in self.oracle:
            assert self.qs.sim.run(until_event=ev) == self.oracle[key]
        else:
            with pytest.raises(KeyError):
                self.qs.sim.run(until_event=ev)

    @rule(idx=st.integers(0, 7))
    def migrate_a_shard(self, idx):
        shards = [s for s in self.map.shards
                  if s.proclet.status is ProcletStatus.RUNNING]
        if not shards:
            return
        shard = shards[idx % len(shards)]
        dst = next(m for m in self.qs.machines
                   if m is not shard.ref.machine)
        try:
            self.qs.sim.run(until_event=self.qs.runtime.migrate(
                shard.ref, dst))
        except MigrationFailed:
            pass

    @rule(dt=st.floats(0.001, 0.05))
    def advance(self, dt):
        self.qs.sim.run(until=self.qs.sim.now + dt)

    # -- invariants ------------------------------------------------------------
    @invariant()
    def sizes_agree(self):
        if not hasattr(self, "oracle"):
            return
        assert len(self.map) == len(self.oracle)

    @invariant()
    def routing_table_is_sorted_and_consistent(self):
        if not hasattr(self, "map"):
            return
        assert [s.lo for s in self.map.shards] == self.map._los

    @invariant()
    def memory_ledger_consistent(self):
        if not hasattr(self, "qs"):
            return
        reserved = sum(m.memory.used for m in self.qs.machines)
        footprints = sum(p.footprint
                         for p in self.qs.runtime._proclets.values())
        assert reserved == pytest.approx(footprints)


TestShardedMapStateful = ShardedMapMachine.TestCase
TestShardedMapStateful.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None)
