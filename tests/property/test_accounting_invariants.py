"""Global accounting invariants under random churn.

The strongest whole-system property: after ANY interleaving of writes,
deletes, splits, merges, and migrations, the sum of DRAM reserved on all
machines equals the sum of live proclet footprints — bytes are never
leaked, double-charged, or lost in flight.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import MigrationFailed, ProcletStatus
from repro.units import KiB, MiB

from ..conftest import make_qs

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 200),
                  st.integers(1, 512)),      # key, KiB
        st.tuples(st.just("delete"), st.integers(0, 200)),
        st.tuples(st.just("migrate_shard"), st.integers(0, 5)),
        st.tuples(st.just("advance"), st.floats(0.001, 0.02)),
    ),
    min_size=5, max_size=50,
)


def _total_footprint(qs) -> float:
    return sum(p.footprint for p in qs.runtime._proclets.values())


def _total_reserved(qs) -> float:
    return sum(m.memory.used for m in qs.machines)


@settings(max_examples=25, deadline=None)
@given(ops=_ops)
def test_memory_never_leaks_under_churn(ops):
    qs = make_qs(max_shard_bytes=512 * KiB, min_shard_bytes=64 * KiB,
                 enable_local_scheduler=False,
                 enable_global_scheduler=False)
    m = qs.sharded_map(name="kv")
    for op in ops:
        if op[0] == "put":
            _k, key, kib = op
            qs.sim.run(until_event=m.put(f"k{key:04d}", key, kib * KiB))
        elif op[0] == "delete":
            try:
                qs.sim.run(until_event=m.delete(f"k{op[1]:04d}"))
            except KeyError:
                pass
        elif op[0] == "migrate_shard":
            shards = [s for s in m.shards
                      if s.proclet.status is ProcletStatus.RUNNING]
            if shards:
                shard = shards[op[1] % len(shards)]
                dst = next(mm for mm in qs.machines
                           if mm is not shard.ref.machine)
                ev = qs.runtime.migrate(shard.ref, dst)
                try:
                    qs.sim.run(until_event=ev)
                except MigrationFailed:
                    pass
        else:
            qs.sim.run(until=qs.sim.now + op[1])
    # Drain all deferred controller work.
    qs.sim.run(until=qs.sim.now + 0.5)
    assert _total_reserved(qs) == pytest.approx(_total_footprint(qs))
    # No proclet stuck mid-operation.
    for p in qs.runtime._proclets.values():
        assert p.status is ProcletStatus.RUNNING


@settings(max_examples=20, deadline=None)
@given(
    n_items=st.integers(1, 60),
    item_kib=st.integers(16, 256),
    when=st.floats(0.0001, 0.01),
)
def test_migration_mid_write_conserves_bytes(n_items, item_kib, when):
    """Interrupting a write burst with a migration never corrupts the
    ledger (writes gate on the migration and land afterwards)."""
    qs = make_qs(enable_local_scheduler=False,
                 enable_global_scheduler=False,
                 enable_split_merge=False)
    ref = qs.spawn_memory(machine=qs.machines[0])

    def writer():
        for i in range(n_items):
            yield ref.call("mp_put", i, item_kib * KiB, None)

    done = qs.sim.process(writer(), name="writer")
    qs.sim.run(until=when)
    if ref.proclet.status is ProcletStatus.RUNNING:
        try:
            qs.sim.run(until_event=qs.runtime.migrate(
                ref.proclet, qs.machines[1]))
        except MigrationFailed:
            pass
    qs.sim.run(until_event=done)
    assert ref.proclet.object_count == n_items
    assert ref.proclet.heap_bytes == pytest.approx(n_items * item_kib * KiB)
    assert _total_reserved(qs) == pytest.approx(_total_footprint(qs))


@settings(max_examples=20, deadline=None)
@given(
    split_sizes=st.lists(st.integers(32, 512), min_size=4, max_size=30),
)
def test_explicit_split_merge_roundtrip_conserves(split_sizes):
    """split then merge returns to an equivalent single-shard state."""
    qs = make_qs(enable_local_scheduler=False,
                 enable_global_scheduler=False,
                 enable_split_merge=False)
    ref = qs.spawn_memory(machine=qs.machines[0])
    total = 0
    for i, kib in enumerate(split_sizes):
        qs.sim.run(until_event=ref.call("mp_put", i, kib * KiB, i))
        total += kib * KiB
    result = qs.sim.run(until_event=qs.split_memory(ref))
    assert result is not None
    _split_key, new_ref = result
    assert ref.proclet.heap_bytes + new_ref.proclet.heap_bytes == \
        pytest.approx(total)
    ok = qs.sim.run(until_event=qs.merge_memory(ref, new_ref))
    assert ok is True
    assert ref.proclet.heap_bytes == pytest.approx(total)
    assert ref.proclet.object_count == len(split_sizes)
    for i in range(len(split_sizes)):
        assert qs.sim.run(until_event=ref.call("mp_get", i)) == i
    assert _total_reserved(qs) == pytest.approx(_total_footprint(qs))
