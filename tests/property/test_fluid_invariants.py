"""Property-based tests for the fluid scheduler.

The fluid scheduler underpins every resource in the simulation (CPU,
NIC, IOPS, GPUs), so its invariants carry the whole reproduction:

* capacity is never oversubscribed;
* priority is strict: a lower class gets nothing while a higher one is
  unsatisfied;
* work is conserved: total served equals total submitted;
* completions happen exactly when the integrated rate covers the work.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import FluidScheduler, Simulator

# Bounded, structured op sequences: (kind, params)
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("submit"),
                  st.floats(0.01, 5.0),       # work
                  st.floats(0.1, 4.0),        # demand
                  st.integers(0, 2)),         # priority
        st.tuples(st.just("advance"), st.floats(0.01, 2.0)),
        st.tuples(st.just("capacity"), st.floats(0.5, 8.0)),
        st.tuples(st.just("cancel_first"),),
    ),
    min_size=1, max_size=30,
)


@settings(max_examples=60, deadline=None)
@given(ops=_ops)
def test_capacity_never_oversubscribed(ops):
    sim = Simulator()
    sched = FluidScheduler(sim, 4.0, name="cpu")
    items = []
    for op in ops:
        if op[0] == "submit":
            _k, work, demand, prio = op
            items.append(sched.submit(work=work, demand=demand,
                                      priority=prio))
        elif op[0] == "advance":
            sim.run(until=sim.now + op[1])
        elif op[0] == "capacity":
            sched.set_capacity(op[1])
        elif op[0] == "cancel_first":
            live = [it for it in items if it.active]
            if live:
                sched.cancel(live[0])
        assert sched.load <= sched.capacity + 1e-9
        for it in sched.items:
            assert 0.0 <= it.rate <= it.demand + 1e-9


@settings(max_examples=60, deadline=None)
@given(ops=_ops)
def test_strict_priority_invariant(ops):
    sim = Simulator()
    sched = FluidScheduler(sim, 4.0, name="cpu")
    for op in ops:
        if op[0] == "submit":
            _k, work, demand, prio = op
            sched.submit(work=work, demand=demand, priority=prio)
        elif op[0] == "advance":
            sim.run(until=sim.now + op[1])
        elif op[0] == "capacity":
            sched.set_capacity(op[1])
        # If any item of class p is unsatisfied (rate < demand), then no
        # item of a strictly lower class may receive service.
        for hungry in sched.items:
            if hungry.rate < hungry.demand - 1e-9:
                for other in sched.items:
                    if other.priority > hungry.priority:
                        assert other.rate <= 1e-9, (
                            f"{other!r} served while {hungry!r} hungry"
                        )


@settings(max_examples=40, deadline=None)
@given(
    works=st.lists(st.floats(0.01, 3.0), min_size=1, max_size=20),
    demands=st.lists(st.floats(0.1, 3.0), min_size=1, max_size=20),
    capacity=st.floats(0.5, 8.0),
)
def test_work_conservation(works, demands, capacity):
    sim = Simulator()
    sched = FluidScheduler(sim, capacity, name="cpu")
    total = 0.0
    for i, work in enumerate(works):
        demand = demands[i % len(demands)]
        sched.submit(work=work, demand=demand)
        total += work
    sim.run()
    sched._settle()
    assert sched.served_integral == (
        __import__("pytest").approx(total, rel=1e-6))
    assert not sched.items  # everything finished


@settings(max_examples=40, deadline=None)
@given(
    work=st.floats(0.01, 10.0),
    demand=st.floats(0.1, 8.0),
    capacity=st.floats(0.5, 8.0),
)
def test_single_item_completion_time_exact(work, demand, capacity):
    sim = Simulator()
    sched = FluidScheduler(sim, capacity, name="cpu")
    item = sched.submit(work=work, demand=demand)
    sim.run(until_event=item.done)
    rate = min(demand, capacity)
    assert math.isclose(sim.now, work / rate, rel_tol=1e-6)


@settings(max_examples=30, deadline=None)
@given(
    works=st.lists(st.floats(0.05, 2.0), min_size=2, max_size=10),
    detach_at=st.floats(0.01, 0.5),
)
def test_detach_attach_preserves_total_service(works, detach_at):
    """Moving an item between schedulers must not create or lose work."""
    sim = Simulator()
    a = FluidScheduler(sim, 2.0, name="a")
    b = FluidScheduler(sim, 2.0, name="b")
    items = [a.submit(work=w, demand=1.0) for w in works]
    sim.run(until=detach_at)
    victim = next((it for it in items if it.active), None)
    if victim is not None:
        a.detach(victim)
        b.attach(victim)
    sim.run()
    a._settle()
    b._settle()
    total = sum(works)
    served = a.served_integral + b.served_integral
    assert served == __import__("pytest").approx(total, rel=1e-6)
    for it in items:
        assert it.done.triggered


@settings(max_examples=40, deadline=None)
@given(
    demands=st.lists(st.floats(0.1, 3.0), min_size=2, max_size=10),
    data=st.data(),
)
def test_water_fill_order_independent(demands, data):
    """Submission order must not matter: the rate an item receives is a
    function of its demand and the competing demand set, so permuting
    the submission order changes nothing observable (beyond float ulps
    from the summation order)."""
    n = len(demands)
    perm = data.draw(st.permutations(list(range(n))))

    def run(order):
        sim = Simulator()
        sched = FluidScheduler(sim, 4.0, name="cpu")
        items = {}
        for idx in order:
            items[idx] = sched.submit(work=1.0 + idx * 0.1,
                                      demand=demands[idx])
        rates = {i: it.rate for i, it in items.items()}
        sim.run()
        sched.sync()
        finishes = {i: it.finished_at for i, it in items.items()}
        return rates, finishes, sched.served_integral

    rates_a, fins_a, served_a = run(list(range(n)))
    rates_b, fins_b, served_b = run(perm)

    approx = __import__("pytest").approx
    # The initial rate *vector* is order-independent (equal-demand items
    # may swap which of two ulp-adjacent shares they get).
    assert sorted(rates_a.values()) == approx(sorted(rates_b.values()),
                                              rel=1e-9, abs=1e-12)
    # Each item (works are distinct) finishes at the same virtual time.
    for i in range(n):
        assert fins_a[i] == approx(fins_b[i], rel=1e-9, abs=1e-9)
    assert served_a == approx(served_b, rel=1e-9)
