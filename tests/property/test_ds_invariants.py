"""Property-based tests: sharded structures behave like their
single-machine counterparts under random operation sequences, across
whatever splits and merges the controller performs along the way."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ds.sharding import BOTTOM
from repro.units import KiB, MiB

import sys
sys.path.insert(0, "")  # keep import graph simple for the test runner

from ..conftest import make_qs  # noqa: E402

_keys = st.text(alphabet="abcdef", min_size=1, max_size=6)
_map_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), _keys, st.integers(0, 1000),
                  st.integers(1, 64)),  # KiB
        st.tuples(st.just("delete"), _keys),
        st.tuples(st.just("get"), _keys),
    ),
    min_size=1, max_size=60,
)


def _fresh_qs():
    return make_qs(max_shard_bytes=256 * KiB, min_shard_bytes=32 * KiB,
                   enable_local_scheduler=False,
                   enable_global_scheduler=False)


@settings(max_examples=25, deadline=None)
@given(ops=_map_ops)
def test_sharded_map_matches_dict(ops):
    qs = _fresh_qs()
    m = qs.sharded_map(name="kv")
    oracle = {}
    for op in ops:
        if op[0] == "put":
            _k, key, value, size_kib = op
            qs.sim.run(until_event=m.put(key, value, size_kib * KiB))
            oracle[key] = value
        elif op[0] == "delete":
            key = op[1]
            ev = m.delete(key)
            if key in oracle:
                qs.sim.run(until_event=ev)
                del oracle[key]
            else:
                with pytest.raises(KeyError):
                    qs.sim.run(until_event=ev)
        else:
            key = op[1]
            ev = m.get(key)
            if key in oracle:
                assert qs.sim.run(until_event=ev) == oracle[key]
            else:
                with pytest.raises(KeyError):
                    qs.sim.run(until_event=ev)
    qs.sim.run(until=qs.sim.now + 0.1)  # let splits/merges settle
    # Final state identical to the oracle.
    assert len(m) == len(oracle)
    for key, value in oracle.items():
        assert qs.sim.run(until_event=m.get(key)) == value


@settings(max_examples=25, deadline=None)
@given(ops=_map_ops)
def test_range_invariant_under_churn(ops):
    """Every object lives in the shard whose range covers its key."""
    qs = _fresh_qs()
    m = qs.sharded_map(name="kv")
    for op in ops:
        if op[0] == "put":
            _k, key, value, size_kib = op
            qs.sim.run(until_event=m.put(key, value, size_kib * KiB))
        elif op[0] == "delete":
            try:
                qs.sim.run(until_event=m.delete(op[1]))
            except KeyError:
                pass
    qs.sim.run(until=qs.sim.now + 0.1)
    for idx, shard in enumerate(m.shards):
        lo = shard.lo
        hi = m.shards[idx + 1].lo if idx + 1 < len(m.shards) else None
        for key in shard.proclet.keys:
            if lo is not BOTTOM:
                assert key >= lo
            if hi is not None:
                assert key < hi
    # los array mirrors the shard list
    assert [s.lo for s in m.shards] == m._los


@settings(max_examples=20, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 128), min_size=1, max_size=80),
)
def test_vector_bytes_conserved_across_splits(sizes):
    qs = _fresh_qs()
    vec = qs.sharded_vector(name="v")
    events = [vec.append(i, size * KiB) for i, size in enumerate(sizes)]
    qs.sim.run(until_event=qs.sim.all_of(events))
    qs.sim.run(until=qs.sim.now + 0.1)
    assert vec.total_objects == len(sizes)
    assert vec.total_bytes == pytest.approx(sum(sizes) * KiB)
    # every element readable with its original value
    for i in range(len(sizes)):
        assert qs.sim.run(until_event=vec.get(i)) == i


@settings(max_examples=20, deadline=None)
@given(
    pushes=st.lists(st.integers(1, 64), min_size=1, max_size=60),
)
def test_queue_conservation(pushes):
    """Elements out == elements in, regardless of shard churn."""
    qs = _fresh_qs()
    q = qs.sharded_queue(name="q", initial_shards=2)
    events = [q.push(i, size * KiB) for i, size in enumerate(pushes)]
    qs.sim.run(until_event=qs.sim.all_of(events))
    qs.sim.run(until=qs.sim.now + 0.1)
    got = [qs.sim.run(until_event=q.pop()) for _ in range(len(pushes))]
    assert sorted(got) == list(range(len(pushes)))
    assert q.length == 0
    # all buffered bytes released
    assert sum(s.proclet.heap_bytes for s in q.shards) == 0


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 40),
    sizes=st.lists(st.integers(1, 512), min_size=2, max_size=40),
)
def test_split_point_balances(n, sizes):
    """split_point produces two non-empty, byte-balanced-ish halves."""
    qs = make_qs(enable_local_scheduler=False,
                 enable_global_scheduler=False,
                 enable_split_merge=False)
    ref = qs.spawn_memory()
    sizes = sizes[:n] if len(sizes) >= 2 else sizes
    for i, size in enumerate(sizes):
        qs.sim.run(until_event=ref.call("mp_put", i, size * KiB, None))
    proclet = ref.proclet
    split = proclet.split_point()
    lower = [k for k in proclet.keys if k < split]
    upper = [k for k in proclet.keys if k >= split]
    assert lower and upper, "both halves must be non-empty"
    total = proclet.heap_bytes
    upper_bytes = sum(proclet._objects[k][0] for k in upper)
    biggest = max(s for s in sizes) * KiB
    # the imbalance is bounded by the biggest single object
    assert abs(total / 2 - upper_bytes) <= biggest
