"""Property tests for the incremental per-class water-filling engine.

The fluid scheduler caches each priority class's fill and skips
recomputation when neither the class nor the capacity entering it has
changed.  The cache must be invisible: after any interleaving of
``set_demand`` / ``set_capacity`` / add / remove / ``set_priority`` /
flush, every item's rate must be *bit-identical* (``==``, not approx)
to a brute-force water-fill over the same membership — reuse may only
skip work, never change an allocation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import FluidScheduler, Simulator
from repro.sim.fluid import _EPS


def brute_force_rates(sched):
    """Eager oracle: recompute every class from scratch with the same
    grouping, sort, and float-operation order as the engine's
    prefix-sum ``_water_fill`` — but none of its caches.  Constrained
    members (first ``k`` in demand order) get exactly their demand;
    everyone else gets one identical ``share`` float."""
    by_prio = {}
    for it in sched.items:  # insertion order, same as the buckets
        by_prio.setdefault(it.priority, []).append(it)
    rates = {}
    load = 0.0
    remaining_cap = sched.capacity
    for prio in sorted(by_prio):
        group = by_prio[prio]
        if remaining_cap <= _EPS:
            for it in group:
                rates[it] = 0.0
            continue
        pending = sorted(group, key=lambda it: it.demand)
        n = len(pending)
        csum = 0.0
        k = n
        for i, it in enumerate(pending):
            d = it.demand
            if d * (n - i) > remaining_cap - csum:
                k = i
                break
            csum += d
        if k < n:
            share = (remaining_cap - csum) / (n - k)
            used = csum + share * (n - k)
            for it in pending[:k]:
                rates[it] = it.demand
            for it in pending[k:]:
                rates[it] = share
        else:
            used = csum
            for it in pending:
                rates[it] = it.demand
        load += used
        remaining_cap -= used
    return rates, load


_ops = st.lists(
    st.one_of(
        st.tuples(st.just("add"),
                  st.floats(0.1, 4.0),        # demand
                  st.integers(0, 3)),          # priority
        st.tuples(st.just("remove"), st.integers(0, 1 << 20)),
        st.tuples(st.just("set_demand"),
                  st.integers(0, 1 << 20), st.floats(0.1, 4.0)),
        st.tuples(st.just("set_capacity"), st.floats(0.5, 8.0)),
        st.tuples(st.just("set_priority"),
                  st.integers(0, 1 << 20), st.integers(0, 3)),
        st.tuples(st.just("flush"),),
    ),
    min_size=1, max_size=40,
)


def _apply(sched, held, op):
    kind = op[0]
    if kind == "add":
        held.append(sched.hold(demand=op[1], priority=op[2]))
    elif kind == "remove":
        if held:
            sched.cancel(held.pop(op[1] % len(held)))
    elif kind == "set_demand":
        if held:
            sched.set_demand(held[op[1] % len(held)], op[2])
    elif kind == "set_capacity":
        sched.set_capacity(op[1])
    elif kind == "set_priority":
        if held:
            sched.set_priority(held[op[1] % len(held)], op[2])
    elif kind == "flush":
        sched.sync()


@settings(max_examples=80, deadline=None)
@given(ops=_ops)
def test_incremental_matches_brute_force_water_fill(ops):
    sim = Simulator()
    sched = FluidScheduler(sim, 4.0, name="cpu")
    held = []
    for op in ops:
        _apply(sched, held, op)
        if op[0] == "flush":
            # Mid-sequence flush: the coalesced recompute so far must
            # already agree with the oracle.
            expected, load = brute_force_rates(sched)
            for it in held:
                assert it.rate == expected[it]
            assert sched.load == load
    sched.sync()
    expected, load = brute_force_rates(sched)
    for it in held:
        assert it.rate == expected[it]
    assert sched.load == load


@settings(max_examples=40, deadline=None)
@given(ops=_ops)
def test_interleaving_is_deterministic(ops):
    """Replaying the same op sequence on a fresh scheduler reproduces
    every rate exactly — the dirty-set bookkeeping holds no hidden
    order-dependent state."""
    results = []
    for _ in range(2):
        sim = Simulator()
        sched = FluidScheduler(sim, 4.0, name="cpu")
        held = []
        for op in ops:
            _apply(sched, held, op)
        sched.sync()
        results.append([it.rate for it in held])
    assert results[0] == results[1]
