"""Property tests for the repro.obs span model.

Two layers: hypothesis-driven unit properties of :class:`SpanTracer`
itself (on a bare simulator), and structural invariants over the spans
captured from real traced experiment runs — nesting, closure, and
digest determinism.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.tracedrun import run_traced
from repro.obs import Span, SpanTracer, capture, chrome_trace
from repro.sim import Simulator

# Categories whose spans are fully contained in their parent's interval
# (synchronous phases and windows tied to the parent's lifetime).  Spans
# for asynchronous work (a migration spawned by a scheduler round) only
# guarantee *starting* inside the parent — they may legitimately outlive
# the decision that triggered them.
_CONTAINED = {"checkpoint", "transfer", "commit", "gate", "lifecycle"}


@pytest.fixture(scope="module", params=["fig1", "chaos"])
def traced(request):
    return run_traced(request.param, seed=3)


class TestSpanNesting:
    def test_children_start_within_parent_interval(self, traced):
        for tracer in traced.spans.tracers:
            by_sid = {s.sid: s for s in tracer.spans}
            for span in tracer.spans:
                if span.parent_id is None:
                    continue
                parent = by_sid[span.parent_id]
                assert parent.start <= span.start <= parent.end, (
                    f"{span!r} starts outside parent {parent!r}")

    def test_synchronous_children_contained_in_parent(self, traced):
        for tracer in traced.spans.tracers:
            by_sid = {s.sid: s for s in tracer.spans}
            for span in tracer.spans:
                if span.parent_id is None \
                        or span.category not in _CONTAINED:
                    continue
                parent = by_sid[span.parent_id]
                assert parent.start <= span.start, f"{span!r}"
                assert span.end <= parent.end, (
                    f"{span!r} outlives parent {parent!r}")

    def test_parent_links_resolve_and_are_acyclic(self, traced):
        for tracer in traced.spans.tracers:
            by_sid = {s.sid: s for s in tracer.spans}
            for span in tracer.spans:
                seen = set()
                cur = span
                while cur.parent_id is not None:
                    assert cur.parent_id in by_sid
                    assert cur.sid not in seen, "cycle in parent links"
                    seen.add(cur.sid)
                    cur = by_sid[cur.parent_id]


class TestSpanClosure:
    def test_every_span_closes_by_end_of_run(self, traced):
        for tracer in traced.spans.tracers:
            assert tracer.open_count == 0
            for span in tracer.spans:
                assert span.closed, f"{span!r} never closed"
                assert span.end >= span.start

    def test_expected_categories_present(self, traced):
        cats = set()
        for tracer in traced.spans.tracers:
            cats |= set(tracer.categories())
        assert {"proclet", "lifecycle", "waterfill"} <= cats
        if traced.experiment == "fig1":
            assert {"migration", "checkpoint", "transfer", "commit",
                    "gate", "sched-local"} <= cats
        if traced.experiment == "chaos":
            assert "fault" in cats


class TestDigestDeterminism:
    def test_same_seed_same_digest(self, traced):
        replay = run_traced(traced.experiment, seed=traced.seed)
        assert replay.digest() == traced.digest()
        assert replay.span_count() == traced.span_count()

    def test_cross_seed_digests_differ(self):
        # fig1's workload is seed-insensitive by design, so the
        # cross-seed property is pinned on chaos, where the seed drives
        # the fault plan.
        a = run_traced("chaos", seed=1)
        b = run_traced("chaos", seed=2)
        assert a.digest() != b.digest()

    def test_digest_covers_args(self):
        sim = Simulator()
        tr = SpanTracer(sim)
        tr.instant("x", "one", k=1)
        d1 = tr.finish().digest()
        sim2 = Simulator()
        tr2 = SpanTracer(sim2)
        tr2.instant("x", "one", k=2)
        assert tr2.finish().digest() != d1


class TestChromeExport:
    def test_export_is_valid_trace_event_json(self, traced):
        doc = traced.chrome()
        assert isinstance(doc["traceEvents"], list)
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases <= {"X", "M"}
        for event in doc["traceEvents"]:
            assert "pid" in event and "tid" in event
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert event["ts"] >= 0
        n_spans = sum(1 for e in doc["traceEvents"] if e["ph"] == "X")
        assert n_spans == traced.span_count()


names = st.text(alphabet="abcdefg:._-", min_size=1, max_size=8)


class TestTracerUnitProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(names, st.floats(0, 1e-3)), min_size=1,
                    max_size=40))
    def test_begin_end_bookkeeping(self, steps):
        sim = Simulator()
        tracer = SpanTracer(sim)
        open_spans = []
        for name, _dt in steps:
            open_spans.append(tracer.begin("cat", name))
        assert tracer.open_count == len(steps)
        for span in open_spans:
            tracer.end(span)
            tracer.end(span)  # idempotent
        assert tracer.open_count == 0
        assert len(tracer) == len(steps)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 30), st.integers(1, 10))
    def test_max_spans_cap_counts_drops(self, n, cap):
        sim = Simulator()
        tracer = SpanTracer(sim, max_spans=cap)
        for i in range(n):
            tracer.end(tracer.begin("c", f"s{i}"))
        assert len(tracer) == min(n, cap)
        assert tracer.dropped == max(0, n - cap)
        # end(None) past the cap must be a no-op, not a crash.
        assert tracer.finish().open_count == 0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(names, min_size=1, max_size=10))
    def test_region_stack_parents_nested_spans(self, names_list):
        sim = Simulator()
        tracer = SpanTracer(sim)
        parents = []
        ctxs = []
        for name in names_list:
            ctx = tracer.region("r", name)
            span = ctx.__enter__()
            if parents:
                assert span.parent_id == parents[-1].sid
            else:
                assert span.parent_id is None
            parents.append(span)
            ctxs.append(ctx)
        assert tracer.current is parents[-1]
        while ctxs:
            ctxs.pop().__exit__(None, None, None)
        assert tracer.current is None
        assert tracer.open_count == 0

    def test_capture_attaches_to_simulators_built_inside(self):
        with capture() as cap:
            s1, s2 = Simulator(seed=1), Simulator(seed=2)
        assert [t.sim for t in cap.tracers] == [s1, s2]
        assert s1.tracer is cap.tracers[0]
        s3 = Simulator()
        assert s3.tracer is None  # factory uninstalled on exit

    def test_span_repr_and_duration(self):
        span = Span(0, None, "c", "n", "t", 1.0, {})
        assert span.duration == 0.0 and not span.closed
        span.end = 1.5
        assert span.duration == pytest.approx(0.5)
        assert "c" in repr(span)

    def test_chrome_trace_accepts_bare_tracer(self):
        sim = Simulator()
        tracer = SpanTracer(sim)
        tracer.instant("c", "n")
        doc = chrome_trace(tracer.finish())
        assert sum(e["ph"] == "X" for e in doc["traceEvents"]) == 1
