"""Unit tests for the ShardAutoscaler control loop: hysteresis,
cool-down, freeze-on-suspect, and fault shedding."""

import pytest

from repro import MachineSpec
from repro.autoscale import AutoscaleConfig
from repro.autoscale import policy
from repro.ft import RecoveryConfig
from repro.units import GiB, KiB, MS, MiB

from ..conftest import make_qs


def make_auto_qs(**kwargs):
    kwargs.setdefault("max_shard_bytes", 256 * KiB)
    kwargs.setdefault("min_shard_bytes", 32 * KiB)
    kwargs.setdefault("enable_local_scheduler", False)
    kwargs.setdefault("enable_global_scheduler", False)
    return make_qs(**kwargs)


def fill_map(qs, m, n, item=64 * KiB, prefix="k"):
    for i in range(n):
        qs.run(until_event=m.put(f"{prefix}{i:04d}", i, item))


class TestEnableHook:
    def test_enable_detaches_legacy_controller(self):
        qs = make_auto_qs()
        legacy = qs.shard_controller
        auto = qs.enable_autoscaler()
        assert qs.shard_controller is None
        assert qs.autoscaler is auto
        assert legacy._detached
        # A heap change through the detached hook is a no-op.
        legacy._on_heap_change(object())

    def test_double_enable_raises(self):
        qs = make_auto_qs()
        qs.enable_autoscaler()
        with pytest.raises(RuntimeError):
            qs.enable_autoscaler()

    def test_config_inherits_size_band_from_qs(self):
        qs = make_auto_qs()
        auto = qs.enable_autoscaler()
        assert auto.max_shard_bytes == qs.config.max_shard_bytes
        assert auto.min_shard_bytes == qs.config.min_shard_bytes

    def test_explicit_band_overrides(self):
        qs = make_auto_qs()
        auto = qs.enable_autoscaler(AutoscaleConfig(
            max_shard_bytes=1 * MiB, min_shard_bytes=64 * KiB))
        assert auto.max_shard_bytes == 1 * MiB

    def test_stop_halts_loop(self):
        qs = make_auto_qs()
        auto = qs.enable_autoscaler()
        m = qs.sharded_map(name="kv")
        auto.stop()
        fill_map(qs, m, 12)  # 768 KiB: way oversized
        qs.run(until=qs.sim.now + 20 * MS)
        assert m.shard_count == 1  # nobody is looking

    def test_destroyed_structure_drops_out_of_scan(self):
        qs = make_auto_qs()
        qs.enable_autoscaler()
        m = qs.sharded_map(name="kv")
        assert m in qs.runtime.reshard_ledger.structures()
        m.destroy()
        assert m not in qs.runtime.reshard_ledger.structures()
        qs.run(until=qs.sim.now + 5 * MS)  # loop must not trip on it


class TestSplitMergeDecisions:
    def test_oversized_shard_splits(self):
        qs = make_auto_qs()
        auto = qs.enable_autoscaler()
        m = qs.sharded_map(name="kv")
        fill_map(qs, m, 12)  # 768 KiB > 256 KiB
        qs.run(until=qs.sim.now + 20 * MS)
        assert m.shard_count > 1
        assert auto.splits_issued >= 1
        assert qs.runtime.reshard_ledger.counters["split_committed"] >= 1
        # Every key is still readable after the reshards.
        for i in range(12):
            assert qs.run(until_event=m.get(f"k{i:04d}")) == i

    def test_undersized_shard_merges_back(self):
        qs = make_auto_qs()
        auto = qs.enable_autoscaler()
        m = qs.sharded_map(name="kv")
        fill_map(qs, m, 12)
        qs.run(until=qs.sim.now + 20 * MS)
        grown = m.shard_count
        assert grown > 1
        for i in range(11):
            qs.run(until_event=m.delete(f"k{i:04d}"))
        qs.run(until=qs.sim.now + 40 * MS)
        assert m.shard_count < grown
        assert auto.merges_issued >= 1
        assert qs.run(until_event=m.get("k0011")) == 11

    def test_hysteresis_no_split_merge_ping_pong(self):
        """A freshly split pair must not immediately re-merge, and a
        merged survivor must not immediately re-split (merge_fraction
        < 1 guarantees both)."""
        qs = make_auto_qs()
        auto = qs.enable_autoscaler()
        m = qs.sharded_map(name="kv")
        fill_map(qs, m, 6)  # 384 KiB: splits once into in-band halves
        qs.run(until=qs.sim.now + 50 * MS)
        count = m.shard_count
        assert count > 1
        # Long quiet period: no size change, so no further decisions.
        decisions_before = len(auto.decisions)
        qs.run(until=qs.sim.now + 100 * MS)
        assert m.shard_count == count
        assert len(auto.decisions) == decisions_before

    def test_cooldown_defers_structural_changes(self):
        qs = make_auto_qs()
        auto = qs.enable_autoscaler()
        m = qs.sharded_map(name="kv")
        fill_map(qs, m, 3)  # 192 KiB: in band, no decision yet
        pid = m.shards[0].ref.proclet_id
        release = qs.sim.now + 50 * MS
        auto._cooldown_until[pid] = release
        fill_map(qs, m, 9, prefix="z")  # now 768 KiB: oversized
        qs.run(until=qs.sim.now + 10 * MS)
        assert m.shard_count == 1  # cooling shard left alone
        assert auto.splits_issued == 0
        qs.run(until=release + 20 * MS)
        assert m.shard_count > 1  # cool-down elapsed, split landed

    def test_route_rate_split_requires_two_objects(self):
        qs = make_auto_qs()
        auto = qs.enable_autoscaler(AutoscaleConfig(max_route_rate=10.0))
        m = qs.sharded_map(name="kv")
        qs.run(until_event=m.put("only", 1, 1 * KiB))
        qs.run(until=qs.sim.now + 3 * MS)  # prime the rate estimator
        # Hammer the single one-object shard far past max_route_rate,
        # spread across sampling periods so the EWMA sees the load.
        for _batch in range(10):
            for _ in range(20):
                qs.run(until_event=m.get("only"))
            qs.run(until=qs.sim.now + 1 * MS)
        qs.run(until=qs.sim.now + 10 * MS)
        # One object can't split, however hot it is.
        assert m.shard_count == 1
        assert all(a != "split" for _, _, _, a, _, _ in auto.decisions)

    def test_route_rate_split_on_hot_shard(self):
        qs = make_auto_qs(max_shard_bytes=64 * MiB,
                          min_shard_bytes=1 * KiB)
        auto = qs.enable_autoscaler(AutoscaleConfig(max_route_rate=10.0))
        m = qs.sharded_map(name="kv")
        fill_map(qs, m, 8, item=2 * KiB)  # tiny: no byte-driven split
        qs.run(until=qs.sim.now + 3 * MS)  # prime the rate estimator
        r = 0
        for _batch in range(10):
            for _ in range(30):
                qs.run(until_event=m.get(f"k{r % 8:04d}"))
                r += 1
            qs.run(until=qs.sim.now + 1 * MS)
        qs.run(until=qs.sim.now + 10 * MS)
        assert any(a == "split" and "route rate" in reason
                   for _, _, _, a, reason, _ in auto.decisions)
        assert m.shard_count > 1


class TestFaultPosture:
    def _three_machines(self):
        return [MachineSpec(name=f"m{i}", cores=8, dram_bytes=4 * GiB)
                for i in range(3)]

    def test_freeze_while_suspected_then_resume(self):
        qs = make_auto_qs(machines=self._three_machines())
        # Slow confirmation: a wide SUSPECTED window to observe.
        qs.enable_recovery(RecoveryConfig(
            heartbeat_interval=1 * MS, suspect_after=2, confirm_after=60))
        auto = qs.enable_autoscaler()
        m = qs.sharded_map(name="kv")
        qs.run(until_event=m.put("seed", 0, 1 * KiB))
        used = {s.ref.machine for s in m.shards} | {m.index_ref.machine}
        victim = next(mach for mach in qs.machines if mach not in used)
        qs.runtime.fail_machine(victim)
        qs.run(until=qs.sim.now + 4 * MS)  # into the SUSPECTED window
        assert qs.recovery.detector.any_suspected()
        assert auto.state == "frozen"
        fill_map(qs, m, 12)  # oversized while frozen
        qs.run(until=qs.sim.now + 3 * MS)
        assert m.shard_count == 1  # decisions logged, none executed
        assert auto.frozen_skips >= 1
        assert any(state == "frozen"
                   for _, _, _, _, _, state in auto.decisions)
        # Confirmation (dead, not suspected) unfreezes the controller:
        # a confirmed-dead machine must not freeze autoscaling forever.
        qs.run(until=qs.sim.now + 80 * MS)
        assert not qs.recovery.detector.any_suspected()
        assert auto.state == "active"
        assert m.shard_count > 1  # the backlog finally drained

    def test_shed_after_sustained_failures_then_recover(self):
        qs = make_auto_qs()
        auto = qs.enable_autoscaler(AutoscaleConfig(
            fault_shed_threshold=3, shed_backoff=20 * MS))
        m = qs.sharded_map(name="kv")
        # Nowhere to place children: every split op declines.
        real = qs.placement.best_for_memory
        qs.placement.best_for_memory = lambda *a, **k: None
        fill_map(qs, m, 12)
        qs.run(until=qs.sim.now + 30 * MS)
        assert auto.op_failures >= 3
        assert auto.sheds >= 1
        assert auto.shed_skips >= 1
        assert qs.runtime.reshard_ledger.counters["split_aborted"] >= 3
        assert m.shard_count == 1
        # Placement heals; after the backoff the controller resumes
        # automatically and the split lands.
        qs.placement.best_for_memory = real
        qs.run(until=qs.sim.now + 60 * MS)
        assert auto.state == "active"
        assert m.shard_count > 1
        for i in range(12):
            assert qs.run(until_event=m.get(f"k{i:04d}")) == i

    def test_degraded_state_still_logs_decisions(self):
        qs = make_auto_qs()
        auto = qs.enable_autoscaler(AutoscaleConfig(
            fault_shed_threshold=1, shed_backoff=200 * MS))
        m = qs.sharded_map(name="kv")
        qs.placement.best_for_memory = lambda *a, **k: None
        fill_map(qs, m, 12)
        qs.run(until=qs.sim.now + 30 * MS)
        assert auto.state == "degraded"
        logged = len(auto.decisions)
        qs.run(until=qs.sim.now + 10 * MS)
        # Read-only decision logging continues while shed.
        assert len(auto.decisions) > logged
        assert any(state == "degraded"
                   for _, _, _, _, _, state in auto.decisions)

    def test_freeze_can_be_disabled(self):
        qs = make_auto_qs(machines=self._three_machines())
        qs.enable_recovery(RecoveryConfig(
            heartbeat_interval=1 * MS, suspect_after=2, confirm_after=60))
        auto = qs.enable_autoscaler(AutoscaleConfig(
            freeze_on_suspect=False))
        m = qs.sharded_map(name="kv")
        qs.run(until_event=m.put("seed", 0, 1 * KiB))
        used = {s.ref.machine for s in m.shards} | {m.index_ref.machine}
        victim = next(mach for mach in qs.machines if mach not in used)
        qs.runtime.fail_machine(victim)
        qs.run(until=qs.sim.now + 4 * MS)
        assert qs.recovery.detector.any_suspected()
        assert auto.state == "active"  # operator opted out of freezing


class TestDetectorFreezeAccounting:
    def test_suspected_count_round_trip(self):
        qs = make_auto_qs()
        qs.enable_recovery()
        det = qs.recovery.detector
        victim = qs.machines[1]
        assert not det.any_suspected()
        qs.runtime.fail_machine(victim)
        qs.run(until=qs.sim.now + 6 * MS)   # into SUSPECTED
        assert det.any_suspected()
        qs.runtime.restore_machine(victim)
        qs.run(until=qs.sim.now + 6 * MS)   # probed back up -> ALIVE
        assert not det.any_suspected()

    def test_confirmed_dead_does_not_count_as_suspected(self):
        qs = make_auto_qs()
        qs.enable_recovery()
        det = qs.recovery.detector
        qs.runtime.fail_machine(qs.machines[1])
        qs.run(until=qs.sim.now + 20 * MS)  # SUSPECTED -> DEAD
        assert det.confirms >= 1
        assert not det.any_suspected()


class TestPolicyParity:
    """Both controllers share repro.autoscale.policy, so their size
    decisions are provably identical on identical observations."""

    def test_shared_predicates(self):
        assert policy.oversized(300 * KiB, 256 * KiB)
        assert not policy.oversized(256 * KiB, 256 * KiB)
        assert policy.undersized(16 * KiB, 32 * KiB)
        assert not policy.undersized(32 * KiB, 32 * KiB)
        assert policy.merge_fits(100 * KiB, 256 * KiB)
        assert not policy.merge_fits(200 * KiB, 256 * KiB)  # 0.7 band

    def test_merge_fraction_blocks_ping_pong(self):
        """A fresh split (two halves summing to ~max) must never
        immediately re-merge: combined == max fails the 0.7 band."""
        maxb = 256 * KiB
        assert not policy.merge_fits(maxb, maxb)
        # And a just-merged survivor (< 0.7 max) is below max, so it
        # never immediately re-splits.
        assert not policy.oversized(0.69 * maxb, maxb)

    def test_byte_decisions_agree_across_controllers(self):
        """The deprecated heap-change controller and the autoscaler
        make the same byte-size calls on the same observations."""
        maxb, minb = 256 * KiB, 32 * KiB
        sizes = [10 * KiB, 100 * KiB, 257 * KiB, 300 * KiB, 31 * KiB,
                 256 * KiB, 0.0, 1 * MiB]

        def size_decision(heap):
            # Shared shape of ShardSizeController._on_heap_change and
            # ShardAutoscaler._decide, byte checks only.
            if policy.oversized(heap, maxb):
                return "split"
            if policy.undersized(heap, minb):
                return "merge"
            return None

        assert [size_decision(s) for s in sizes] == [
            "merge", None, "split", "split", "merge", None, "merge",
            "split"]


class TestMetrics:
    def test_record_autoscale_stats(self):
        qs = make_auto_qs()
        auto = qs.enable_autoscaler()
        m = qs.sharded_map(name="kv")
        fill_map(qs, m, 12)
        qs.run(until=qs.sim.now + 20 * MS)
        stats = qs.metrics.record_autoscale_stats(auto)
        assert stats["splits_issued"] >= 1
        assert stats["split_committed"] >= 1
        assert stats["state"] == "active"
        assert qs.metrics.has("autoscale.decisions")
        assert qs.metrics.has("autoscale.state")
        assert qs.metrics.counter("autoscale.decision.split").total >= 1

    def test_gate_window_accounting(self):
        qs = make_auto_qs()
        qs.enable_autoscaler()
        m = qs.sharded_map(name="kv")
        fill_map(qs, m, 12)
        qs.run(until=qs.sim.now + 20 * MS)
        mig = qs.runtime.migration
        assert mig.gate_windows.get("reshard.split", 0) >= 1
        assert mig.max_gate_window > 0.0
        assert qs.metrics.counter("runtime.gate.reshard.split").total >= 1


class TestConfigValidation:
    def test_merge_fraction_must_leave_hysteresis(self):
        with pytest.raises(ValueError):
            AutoscaleConfig(merge_fraction=1.0)
        with pytest.raises(ValueError):
            AutoscaleConfig(merge_fraction=0.0)

    def test_period_positive(self):
        with pytest.raises(ValueError):
            AutoscaleConfig(period=0.0)

    def test_band_ordering(self):
        with pytest.raises(ValueError):
            AutoscaleConfig(max_shard_bytes=32 * KiB,
                            min_shard_bytes=64 * KiB)

    def test_route_rate_positive(self):
        with pytest.raises(ValueError):
            AutoscaleConfig(max_route_rate=0.0)

    def test_shed_threshold_floor(self):
        with pytest.raises(ValueError):
            AutoscaleConfig(fault_shed_threshold=0)
