"""Crash tests for the two-phase reshard protocol: commit atomicity,
rollback at every phase boundary, and service preservation during the
gate window.  The chaos invariant checker is attached throughout, so
every simulator event — including the ones between a machine failure
and the protocol's rollback — is audited for routable-keys-always,
range-map agreement, and no-orphaned-children."""

import pytest

from repro.chaos import InvariantChecker
from repro.ds.sharding import BOTTOM
from repro.runtime import DeadProclet
from repro.units import KiB, MS, MiB, US

from ..conftest import make_qs

ITEM = 1 * MiB  # big items: transfers are long enough to interrupt


def make_quiet_qs(**kwargs):
    """No background controllers: the tests drive the protocol by hand."""
    kwargs.setdefault("max_shard_bytes", 256 * KiB)
    kwargs.setdefault("min_shard_bytes", 32 * KiB)
    kwargs.setdefault("enable_local_scheduler", False)
    kwargs.setdefault("enable_global_scheduler", False)
    kwargs.setdefault("enable_split_merge", False)
    return make_qs(**kwargs)


def checked(qs):
    return InvariantChecker(qs.runtime).attach(qs.sim)


def fill(qs, m, n, item=ITEM):
    for i in range(n):
        qs.run(until_event=m.put(f"k{i:04d}", i, item))


def step_until(qs, pred, step=20 * US, limit=20_000):
    """Advance virtual time in small steps until *pred* holds."""
    for _ in range(limit):
        if pred():
            return
        qs.run(until=qs.sim.now + step)
    raise AssertionError("condition never became true")


def force_cross_machine(qs, donor_machine):
    """Pin child placement to a machine that is not the donor's."""
    other = next(mach for mach in qs.machines if mach is not donor_machine)
    qs.placement.best_for_memory = lambda *a, **k: other
    return other


class TestSplitProtocol:
    def test_commit_flips_table_atomically(self):
        qs = make_quiet_qs()
        checker = checked(qs)
        m = qs.sharded_map(name="kv")
        fill(qs, m, 8)
        donor = m.shards[0]
        force_cross_machine(qs, donor.ref.machine)
        ev = m.reshard_split_by_id(donor.ref.proclet_id)
        split_key, child_ref = qs.run(until_event=ev)
        assert m.shard_count == 2
        assert [s.lo for s in m.shards] == m._los
        assert m.shards[0].lo == BOTTOM and m.shards[1].lo == split_key
        assert m.shards[1].ref is child_ref
        # Ranges were pushed down inside the same commit step.
        lo_p, hi_p = m.shards[0].proclet, m.shards[1].proclet
        assert lo_p.range_hi == split_key and hi_p.range_lo == split_key
        ledger = qs.runtime.reshard_ledger
        assert ledger.counters["split_committed"] == 1
        assert ledger.active_count() == 0
        for i in range(8):
            assert qs.run(until_event=m.get(f"k{i:04d}")) == i
        assert checker.checks > 0

    def test_declined_when_single_object(self):
        qs = make_quiet_qs()
        m = qs.sharded_map(name="kv")
        fill(qs, m, 1)
        ev = m.reshard_split_by_id(m.shards[0].ref.proclet_id)
        assert qs.run(until_event=ev) is None
        assert m.shard_count == 1
        # Declined before any side effect: nothing started, nothing
        # aborted.
        assert qs.runtime.reshard_ledger.counters["split_started"] == 0

    def test_unknown_shard_returns_none(self):
        qs = make_quiet_qs()
        m = qs.sharded_map(name="kv")
        assert m.reshard_split_by_id(10**9) is None
        assert m.reshard_merge_by_id(10**9) is None

    def test_donor_crash_in_prepare_aborts(self):
        qs = make_quiet_qs()
        checker = checked(qs)
        m = qs.sharded_map(name="kv")
        fill(qs, m, 8)
        donor = m.shards[0]
        ev = m.reshard_split_by_id(donor.ref.proclet_id)
        qs.run(until=qs.sim.now + 30 * US)  # inside the prepare gate
        assert qs.runtime.reshard_ledger.active_count() == 1
        qs.runtime.fail_machine(donor.ref.machine)
        assert qs.run(until_event=ev) is None
        ledger = qs.runtime.reshard_ledger
        assert ledger.counters["split_aborted"] == 1
        assert ledger.active_count() == 0
        # The (now lost) donor stays in the table for recovery to find.
        assert m.shard_count == 1
        assert donor.ref.proclet_id in qs.runtime.lost_proclets()
        assert checker.checks > 0

    def test_child_machine_crash_mid_transfer_rolls_back(self):
        qs = make_quiet_qs()
        checker = checked(qs)
        m = qs.sharded_map(name="kv")
        fill(qs, m, 8)
        donor = m.shards[0]
        dst = force_cross_machine(qs, donor.ref.machine)
        ledger = qs.runtime.reshard_ledger
        ev = m.reshard_split_by_id(donor.ref.proclet_id)
        # Wait for the gated child to exist: the op is mid-transfer.
        step_until(qs, lambda: any(op.child_id is not None
                                   for op in ledger.active_ops()))
        qs.runtime.fail_machine(dst)
        assert qs.run(until_event=ev) is None
        assert ledger.counters["split_aborted"] == 1
        assert m.shard_count == 1
        # Rollback reinstalled the extracted half: nothing was lost.
        for i in range(8):
            assert qs.run(until_event=m.get(f"k{i:04d}")) == i
        assert checker.checks > 0

    def test_donor_crash_mid_transfer_aborts_and_reaps_child(self):
        qs = make_quiet_qs()
        checker = checked(qs)
        m = qs.sharded_map(name="kv")
        fill(qs, m, 8)
        donor = m.shards[0]
        donor_machine = donor.ref.machine
        force_cross_machine(qs, donor_machine)
        ledger = qs.runtime.reshard_ledger
        ev = m.reshard_split_by_id(donor.ref.proclet_id)
        step_until(qs, lambda: any(op.child_id is not None
                                   for op in ledger.active_ops()))
        child_id = ledger.active_ops()[0].child_id
        qs.runtime.fail_machine(donor_machine)
        assert qs.run(until_event=ev) is None
        assert ledger.counters["split_aborted"] == 1
        # The half-filled child was destroyed, not leaked into service.
        assert child_id not in qs.runtime._proclets
        assert m.shard_count == 1
        # Fail-stop semantics: the donor's keys died with its machine.
        with pytest.raises(DeadProclet):
            qs.run(until_event=m.get("k0000"))
        assert checker.checks > 0


class TestMergeProtocol:
    def _two_shards(self, qs, m, n=8):
        """Split once so the map has two shards on different machines."""
        fill(qs, m, n)
        donor = m.shards[0]
        force_cross_machine(qs, donor.ref.machine)
        assert qs.run(until_event=m.reshard_split_by_id(
            donor.ref.proclet_id)) is not None
        assert m.shard_count == 2
        assert m.shards[0].ref.machine is not m.shards[1].ref.machine

    def test_commit_merges_and_preserves_keys(self):
        qs = make_quiet_qs()
        checker = checked(qs)
        m = qs.sharded_map(name="kv")
        self._two_shards(qs, m)
        right = m.shards[1]
        ev = m.reshard_merge_by_id(right.ref.proclet_id)
        assert qs.run(until_event=ev) is True
        assert m.shard_count == 1
        assert m.shards[0].lo == BOTTOM
        assert [s.lo for s in m.shards] == m._los
        ledger = qs.runtime.reshard_ledger
        assert ledger.counters["merge_committed"] == 1
        assert ledger.active_count() == 0
        for i in range(8):
            assert qs.run(until_event=m.get(f"k{i:04d}")) == i
        assert checker.checks > 0

    def test_left_donor_range_absorbed_by_survivor(self):
        qs = make_quiet_qs()
        m = qs.sharded_map(name="kv")
        self._two_shards(qs, m)
        left = m.shards[0]
        split_key = m.shards[1].lo
        ev = m.reshard_merge_by_id(left.ref.proclet_id)
        assert qs.run(until_event=ev) is True
        assert m.shard_count == 1
        # The survivor (old right shard) inherited BOTTOM.
        assert m.shards[0].lo == BOTTOM
        assert m.shards[0].lo != split_key
        for i in range(8):
            assert qs.run(until_event=m.get(f"k{i:04d}")) == i

    def test_endpoint_crash_in_prepare_aborts(self):
        qs = make_quiet_qs()
        checker = checked(qs)
        m = qs.sharded_map(name="kv")
        self._two_shards(qs, m)
        right = m.shards[1]
        ev = m.reshard_merge_by_id(right.ref.proclet_id)
        qs.run(until=qs.sim.now + 30 * US)  # inside the prepare gate
        qs.runtime.fail_machine(right.ref.machine)
        assert qs.run(until_event=ev) is None
        ledger = qs.runtime.reshard_ledger
        assert ledger.counters["merge_aborted"] == 1
        # Table untouched: two shards, the donor lost for recovery.
        assert m.shard_count == 2
        assert qs.run(until_event=m.get("k0000")) == 0  # left intact

    def test_survivor_crash_mid_transfer_reinstalls_donor(self):
        qs = make_quiet_qs()
        checker = checked(qs)
        m = qs.sharded_map(name="kv")
        self._two_shards(qs, m)
        left, right = m.shards
        split_key = right.lo
        ledger = qs.runtime.reshard_ledger
        ev = m.reshard_merge_by_id(right.ref.proclet_id)
        # Let the op pass the prepare gate into the bulk transfer.
        t0 = qs.sim.now
        step_until(qs, lambda: ledger.active_count() == 1
                   and qs.sim.now > t0 + qs.config.split_overhead)
        qs.runtime.fail_machine(left.ref.machine)
        assert qs.run(until_event=ev) is None
        assert ledger.counters["merge_aborted"] == 1
        assert m.shard_count == 2
        # The donor reinstalled its extracted items: every key at or
        # above the split point still reads back correctly.
        for i in range(8):
            key = f"k{i:04d}"
            if key >= split_key:
                assert qs.run(until_event=m.get(key)) == i
        assert checker.checks > 0


class TestServicePreservation:
    def test_reads_issued_during_gate_window_complete(self):
        """Calls routed while the donor is gated block (they do not
        fail) and settle with correct results after the flip — for keys
        that stay in the donor AND keys that move to the child."""
        qs = make_quiet_qs()
        checker = checked(qs)
        m = qs.sharded_map(name="kv")
        fill(qs, m, 8)
        donor = m.shards[0]
        force_cross_machine(qs, donor.ref.machine)
        ev = m.reshard_split_by_id(donor.ref.proclet_id)
        qs.run(until=qs.sim.now + 30 * US)  # op holds the gate
        assert qs.runtime.reshard_ledger.active_count() == 1
        reads = [m.get(f"k{i:04d}") for i in range(8)]
        write = m.put("k0000", 999, ITEM)
        split_key, _ = qs.run(until_event=ev)
        assert m.shard_count == 2
        for i, read in enumerate(reads):
            got = qs.run(until_event=read)
            assert got in (i, 999) if i == 0 else got == i
        qs.run(until_event=write)
        assert qs.run(until_event=m.get("k0000")) == 999
        # Keys on both sides of the split answered.
        assert any(f"k{i:04d}" >= split_key for i in range(8))
        assert checker.checks > 0

    def test_gate_window_is_bounded(self):
        """The dual-route window is accounted and bounded: one gate
        window per committed op, no window left open."""
        qs = make_quiet_qs()
        m = qs.sharded_map(name="kv")
        fill(qs, m, 8)
        donor = m.shards[0]
        force_cross_machine(qs, donor.ref.machine)
        qs.run(until_event=m.reshard_split_by_id(donor.ref.proclet_id))
        mig = qs.runtime.migration
        assert mig.gate_windows.get("reshard.split") == 1
        assert 0.0 < mig.max_gate_window < 50 * MS
        # All gates reopened: every shard answers immediately.
        from repro.runtime.proclet import ProcletStatus
        for s in m.shards:
            assert s.proclet.status is ProcletStatus.RUNNING
