"""End-to-end recovery per policy: kill the host, watch the state
come back (or not) under RESTART / CHECKPOINT / REPLICATE / LINEAGE."""

import pytest

from repro import MachineSpec
from repro.core.memproclet import MemoryProclet
from repro.ft import LineageLog, RecoveryConfig, RecoveryPolicy
from repro.runtime import ProcletLost
from repro.units import GiB, MiB

from ..conftest import make_qs

CFG = RecoveryConfig(heartbeat_interval=1e-3, suspect_after=2,
                     confirm_after=4, checkpoint_interval=10e-3,
                     mirror_interval=5e-3)


def make_rig(policy, config=CFG, machines=3, lineage=None):
    """A small cluster with one protected memory proclet on m0 holding
    ten 1 MiB objects; returns (qs, manager, ref, lineage)."""
    qs = make_qs(
        machines=[MachineSpec(name=f"m{i}", cores=4, dram_bytes=4 * GiB)
                  for i in range(machines)],
        enable_local_scheduler=False, enable_global_scheduler=False,
        enable_split_merge=False)
    manager = qs.enable_recovery(config)
    ref = qs.spawn_memory(machine=qs.machines[0], name="state")
    log = lineage
    if policy is RecoveryPolicy.LINEAGE and log is None:
        log = LineageLog()
    for i in range(10):
        if log is not None:
            ev = log.recording_put(qs.runtime, ref, i, 1 * MiB, f"v{i}")
        else:
            ev = ref.call("mp_put", i, 1 * MiB, f"v{i}")
        qs.run(until_event=ev)
    manager.protect(ref, policy, lineage=log)
    return qs, manager, ref, log


def kill_and_recover(qs, machine, until=0.2):
    qs.runtime.fail_machine(machine)
    qs.run(until=qs.sim.now + until)


class TestRestart:
    def test_respawns_empty_with_same_pid(self):
        qs, manager, ref, _ = make_rig(RecoveryPolicy.RESTART)
        pid = ref.proclet_id
        kill_and_recover(qs, qs.machines[0])
        assert not qs.runtime.is_lost(pid)
        assert ref.proclet.heap_bytes == 0.0
        assert ref.machine is not qs.machines[0]
        assert manager.recoveries == {"restart": 1}
        assert qs.runtime.incarnation_of(pid) == 1

    def test_old_ref_keeps_working(self):
        qs, _m, ref, _ = make_rig(RecoveryPolicy.RESTART)
        kill_and_recover(qs, qs.machines[0])
        qs.run(until_event=ref.call("mp_put", 99, 1 * MiB, "fresh"))
        assert qs.run(until_event=ref.call("mp_get", 99)) == "fresh"


class TestCheckpoint:
    def test_state_restored_from_snapshot(self):
        qs, manager, ref, _ = make_rig(RecoveryPolicy.CHECKPOINT)
        qs.run(until=qs.sim.now + 0.05)  # let a checkpoint land
        assert manager.checkpoint_bytes_held > 0
        kill_and_recover(qs, qs.machines[0])
        for i in range(10):
            assert qs.run(until_event=ref.call("mp_get", i)) == f"v{i}"
        assert manager.recoveries == {"checkpoint": 1}
        assert manager.convergence_errors == []

    def test_loss_bounded_by_snapshot_interval(self):
        """Writes after the last snapshot are lost — and exactly those."""
        qs, manager, ref, _ = make_rig(RecoveryPolicy.CHECKPOINT)
        qs.run(until=qs.sim.now + 0.05)
        # This write lands after the last pre-kill snapshot fires.
        qs.run(until_event=ref.call("mp_put", 50, 1 * MiB, "late"))
        qs.runtime.fail_machine(qs.machines[0])
        qs.run(until=qs.sim.now + 0.05)
        for i in range(10):
            assert qs.run(until_event=ref.call("mp_get", i)) == f"v{i}"
        losses = qs.metrics.samples("ft.data_loss_bytes")
        assert losses and losses[0] >= 0.0

    def test_snapshot_bytes_pruned_when_peer_dies(self):
        qs, manager, ref, _ = make_rig(RecoveryPolicy.CHECKPOINT)
        qs.run(until=qs.sim.now + 0.05)
        peer = manager._snapshots[ref.proclet_id].peer
        assert peer is not qs.machines[0]
        held = manager.checkpoint_bytes_held
        assert manager.reserved_on(peer) == pytest.approx(held)
        qs.runtime.fail_machine(peer)
        assert manager.checkpoint_bytes_held == 0.0
        assert manager.reserved_on(peer) == 0.0


class TestReplicate:
    def test_zero_loss_promotion(self):
        qs, manager, ref, _ = make_rig(RecoveryPolicy.REPLICATE)
        qs.run(until=qs.sim.now + 0.03)  # initial mirror sync
        kill_and_recover(qs, qs.machines[0])
        for i in range(10):
            assert qs.run(until_event=ref.call("mp_get", i)) == f"v{i}"
        assert manager.recoveries == {"replicate": 1}
        assert qs.metrics.samples("ft.data_loss_bytes") == [0.0]

    def test_standby_rearmed_after_promotion(self):
        qs, manager, ref, _ = make_rig(RecoveryPolicy.REPLICATE)
        qs.run(until=qs.sim.now + 0.03)
        kill_and_recover(qs, qs.machines[0])
        standby = manager._standbys.get(ref.proclet_id)
        assert standby is not None
        assert standby.machine is not ref.machine

    def test_mirror_pays_wire_bytes(self):
        qs, manager, ref, _ = make_rig(RecoveryPolicy.REPLICATE)
        qs.run(until=qs.sim.now + 0.05)
        assert qs.metrics.counter("ft.mirror.bytes").total >= 10 * MiB


class TestLineage:
    def test_replay_rebuilds_state(self):
        qs, manager, ref, log = make_rig(RecoveryPolicy.LINEAGE)
        kill_and_recover(qs, qs.machines[0])
        for i in range(10):
            assert qs.run(until_event=ref.call("mp_get", i)) == f"v{i}"
        assert manager.recoveries == {"lineage": 1}
        assert log.replayed == 10
        assert manager.convergence_errors == []

    def test_lineage_requires_log(self):
        qs, manager, ref, _ = make_rig(RecoveryPolicy.RESTART)
        with pytest.raises(ValueError):
            manager.protect(ref, RecoveryPolicy.LINEAGE)


class TestTransparentRetry:
    def test_caller_survives_the_crash_window(self):
        """A put issued while the callee is lost blocks, retries, and
        lands on the recovered incarnation."""
        qs, manager, ref, _ = make_rig(RecoveryPolicy.REPLICATE)
        qs.run(until=qs.sim.now + 0.03)
        qs.runtime.fail_machine(qs.machines[0])
        ev = ref.call("mp_put", 77, 1 * MiB, "during")
        qs.run(until=qs.sim.now + 0.2)
        assert ev.triggered and ev.ok
        assert qs.run(until_event=ref.call("mp_get", 77)) == "during"
        assert qs.metrics.counter("ft.call_retries").total >= 1

    def test_uncovered_caller_fails_fast(self):
        qs, manager, ref, _ = make_rig(RecoveryPolicy.NONE)
        qs.runtime.fail_machine(qs.machines[0])
        with pytest.raises(ProcletLost):
            qs.run(until_event=ref.call("mp_get", 0))


class TestPublicLostApi:
    def test_is_lost_and_lost_proclets(self):
        qs, manager, ref, _ = make_rig(RecoveryPolicy.NONE)
        pid = ref.proclet_id
        assert not qs.runtime.is_lost(pid)
        assert list(qs.runtime.lost_proclets()) == []
        qs.runtime.fail_machine(qs.machines[0])
        assert qs.runtime.is_lost(pid)
        assert pid in qs.runtime.lost_proclets()
