"""RecoveryManager mechanics: retry budget, shedding, determinism."""

import pytest

from repro import MachineSpec
from repro.cluster import Priority
from repro.ft import RecoveryConfig, RecoveryPolicy
from repro.runtime import ProcletLost
from repro.units import GiB, MiB

from ..conftest import make_qs

CFG = RecoveryConfig(heartbeat_interval=1e-3, suspect_after=2,
                     confirm_after=4, checkpoint_interval=10e-3,
                     mirror_interval=5e-3)


def tiny_qs(machines):
    return make_qs(machines=machines, enable_local_scheduler=False,
                   enable_global_scheduler=False, enable_split_merge=False)


class TestRetryBudget:
    def test_budget_exhaustion_surfaces_proclet_lost(self):
        """With no machine able to host the recovery, a covered call
        retries its full budget and then fails with ProcletLost."""
        qs = tiny_qs([MachineSpec(name="m0", cores=4, dram_bytes=2 * GiB),
                      MachineSpec(name="m1", cores=4, dram_bytes=2 * GiB)])
        cfg = RecoveryConfig(heartbeat_interval=1e-3, suspect_after=2,
                             confirm_after=4, retry_budget=3,
                             retry_backoff=1e-3)
        manager = qs.enable_recovery(cfg)
        ref = qs.spawn_memory(machine=qs.machines[0], name="doomed")
        qs.run(until_event=ref.call("mp_put", 0, 1 * MiB, "x"))
        manager.protect(ref, RecoveryPolicy.RESTART)
        # Kill every machine: recovery has nowhere to go.
        qs.runtime.fail_machine(qs.machines[0])
        qs.runtime.fail_machine(qs.machines[1])
        ev = ref.call("mp_get", 0)
        with pytest.raises(ProcletLost):
            qs.run(until_event=ev, until=2.0)
        assert qs.metrics.counter("ft.call_retries").total == 3

    def test_retry_delay_is_none_for_uncovered_pids(self):
        qs = tiny_qs(None)
        manager = qs.enable_recovery(CFG)
        assert manager.retry_delay(12345, 0, None) is None

    def test_retry_delay_backs_off_exponentially(self):
        qs = tiny_qs(None)
        cfg = RecoveryConfig(retry_backoff=1e-3,
                             retry_backoff_multiplier=2.0,
                             retry_jitter=0.0)
        manager = qs.enable_recovery(cfg)
        ref = qs.spawn_memory(name="s")
        manager.protect(ref, RecoveryPolicy.RESTART)
        pid = ref.proclet_id
        d0 = manager.retry_delay(pid, 0, None)
        d1 = manager.retry_delay(pid, 1, None)
        d2 = manager.retry_delay(pid, 2, None)
        assert d1 == pytest.approx(2 * d0)
        assert d2 == pytest.approx(4 * d0)
        assert manager.retry_delay(pid, cfg.retry_budget, None) is None


class TestShedding:
    def test_low_priority_victim_shed_for_high_priority_recovery(self):
        """When no survivor can hold the recovering proclet, strictly
        lower-priority registrations are destroyed to make room."""
        qs = tiny_qs([
            MachineSpec(name="m0", cores=4, dram_bytes=4 * GiB),
            MachineSpec(name="m1", cores=4, dram_bytes=1 * GiB),
        ])
        manager = qs.enable_recovery(CFG)
        m0, m1 = qs.machines
        victim = qs.spawn_memory(machine=m1, name="victim")
        qs.run(until_event=victim.call("mp_put", 0, 300 * MiB, "bulk"))
        manager.protect(victim, RecoveryPolicy.RESTART,
                        priority=Priority.LOW)
        precious = qs.spawn_memory(machine=m0, name="precious")
        qs.run(until_event=precious.call("mp_put", 0, 500 * MiB, "gold"))
        manager.protect(precious, RecoveryPolicy.CHECKPOINT,
                        priority=Priority.HIGH)
        # The 500 MiB snapshot copy takes ~42 ms on a 100 Gb/s NIC;
        # wait long enough for it to commit onto m1 before the kill.
        qs.run(until=qs.sim.now + 0.2)
        assert manager.checkpoint_bytes_held > 0
        qs.runtime.fail_machine(m0)
        qs.run(until=qs.sim.now + 0.3)
        assert manager.sheds == 1
        assert qs.runtime._proclets.get(victim.proclet_id) is None
        assert not qs.runtime.is_lost(precious.proclet_id)
        assert qs.run(until_event=precious.call("mp_get", 0)) == "gold"

    def test_equal_priority_is_never_shed(self):
        qs = tiny_qs([
            MachineSpec(name="m0", cores=4, dram_bytes=4 * GiB),
            MachineSpec(name="m1", cores=4, dram_bytes=1 * GiB),
        ])
        manager = qs.enable_recovery(CFG)
        m0, m1 = qs.machines
        victim = qs.spawn_memory(machine=m1, name="peer")
        qs.run(until_event=victim.call("mp_put", 0, 600 * MiB, "bulk"))
        manager.protect(victim, RecoveryPolicy.RESTART,
                        priority=Priority.NORMAL)
        big = qs.spawn_memory(machine=m0, name="big")
        qs.run(until_event=big.call("mp_put", 0, 300 * MiB, "x"))
        manager.protect(big, RecoveryPolicy.CHECKPOINT,
                        priority=Priority.NORMAL)
        qs.run(until=qs.sim.now + 0.05)
        qs.runtime.fail_machine(m0)
        qs.run(until=qs.sim.now + 0.3)
        # No strictly-lower-priority victims exist: nothing is shed and
        # the recovery is recorded as failed (no capacity).
        assert manager.sheds == 0
        assert manager.failed_recoveries >= 1
        assert qs.runtime._proclets.get(victim.proclet_id) is not None


class TestDeterminism:
    @staticmethod
    def _scenario():
        qs = tiny_qs([MachineSpec(name=f"m{i}", cores=4,
                                  dram_bytes=4 * GiB) for i in range(3)])
        manager = qs.enable_recovery(CFG)
        refs = []
        for k in range(4):
            ref = qs.spawn_memory(machine=qs.machines[k % 3],
                                  name=f"s{k}")
            qs.run(until_event=ref.call("mp_put", 0, 5 * MiB, k))
            manager.protect(ref, RecoveryPolicy.CHECKPOINT
                            if k % 2 else RecoveryPolicy.REPLICATE)
            refs.append(ref)
        qs.run(until=0.1)
        qs.runtime.fail_machine(qs.machines[0])
        qs.run(until=0.4)
        return (qs.sim.now,
                dict(manager.recoveries),
                manager.failed_recoveries,
                qs.metrics.counter("ft.checkpoints").total,
                qs.metrics.counter("ft.mirror.bytes").total,
                tuple(qs.metrics.samples("ft.mttr")))

    def test_same_seed_same_trajectory(self):
        assert self._scenario() == self._scenario()


class TestStats:
    def test_record_recovery_stats_gauges(self):
        qs = tiny_qs(None)
        manager = qs.enable_recovery(CFG)
        ref = qs.spawn_memory(machine=qs.machines[0], name="s")
        qs.run(until_event=ref.call("mp_put", 0, 1 * MiB, "x"))
        manager.protect(ref, RecoveryPolicy.RESTART)
        qs.runtime.fail_machine(qs.machines[0])
        qs.run(until=0.2)
        stats = qs.metrics.record_recovery_stats(manager)
        assert stats["confirms"] == 1
        assert stats["recoveries"] == 1
        assert stats["recoveries.restart"] == 1
        assert qs.metrics.gauge("ft.recoveries").level == 1
