"""Watch-set failure detector: equivalence with the full sweep.

A detector constructed with a runtime probes only watched machines; one
without sweeps the whole fleet every tick.  Both observe the same
cluster here, so every transition (suspect / confirm / back-alive) must
fire at identical virtual times, in identical order.
"""

import pytest

from repro.ft import FailureDetector, MachineHealth, RecoveryConfig

from ..conftest import make_qs


CFG = RecoveryConfig(heartbeat_interval=1e-3, suspect_after=2,
                     confirm_after=4)


@pytest.fixture
def qs():
    return make_qs(enable_local_scheduler=False,
                   enable_global_scheduler=False,
                   enable_split_merge=False)


def _timeline(det, log):
    det.on_suspect(lambda m: log.append((det.sim.now, "suspect", m.id)))
    det.on_confirm(lambda m: log.append((det.sim.now, "confirm", m.id)))
    det.on_alive(lambda m, prev: log.append((det.sim.now, "alive", m.id)))


class TestWatchSetEquivalence:
    def test_transitions_match_full_sweep(self, qs):
        watched = FailureDetector(qs.cluster, CFG, runtime=qs.runtime)
        swept = FailureDetector(qs.cluster, CFG)
        logs = ([], [])
        _timeline(watched, logs[0])
        _timeline(swept, logs[1])

        def chaos():
            machines = qs.machines
            yield qs.sim.timeout(0.5e-3)
            qs.runtime.fail_machine(machines[1])
            yield qs.sim.timeout(2e-3)
            qs.runtime.fail_machine(machines[0])
            # machines[1] comes back while merely suspected.
            yield qs.sim.timeout(1.2e-3)
            qs.runtime.restore_machine(machines[1])
            # machines[0] dies for good, then returns.
            yield qs.sim.timeout(8e-3)
            qs.runtime.restore_machine(machines[0])

        qs.sim.process(chaos())
        qs.run(until=0.05)
        assert logs[0] == logs[1]
        assert logs[0]  # the scenario produced transitions
        for m in qs.machines:
            assert watched.state(m) is swept.state(m)

    def test_idle_fleet_is_never_probed(self, qs):
        det = FailureDetector(qs.cluster, CFG, runtime=qs.runtime)
        qs.run(until=0.05)
        # No failures: the watch set stays empty and no probe state
        # accumulates.
        assert det._watch == set()
        assert det._missed == {}
        for m in qs.machines:
            assert det.state(m) is MachineHealth.ALIVE

    def test_machine_leaves_watch_once_alive_again(self, qs):
        det = FailureDetector(qs.cluster, CFG, runtime=qs.runtime)
        m0 = qs.machines[0]
        qs.runtime.fail_machine(m0)
        qs.run(until=2.5e-3)
        assert m0.id in det._watch
        assert det.state(m0) is MachineHealth.SUSPECTED
        qs.runtime.restore_machine(m0)
        qs.run(until=5e-3)
        assert det.state(m0) is MachineHealth.ALIVE
        assert m0.id not in det._watch

    def test_machine_down_at_construction_is_watched(self, qs):
        m0 = qs.machines[0]
        qs.runtime.fail_machine(m0)
        det = FailureDetector(qs.cluster, CFG, runtime=qs.runtime)
        assert m0.id in det._watch
        qs.run(until=0.02)
        assert det.state(m0) is MachineHealth.DEAD
