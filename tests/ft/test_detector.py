"""Failure-detector state machine: heartbeats, suspicion, confirmation."""

import pytest

from repro.ft import FailureDetector, MachineHealth, RecoveryConfig

from ..conftest import make_qs


@pytest.fixture
def qs():
    return make_qs(enable_local_scheduler=False,
                   enable_global_scheduler=False,
                   enable_split_merge=False)


CFG = RecoveryConfig(heartbeat_interval=1e-3, suspect_after=2,
                     confirm_after=4)


class TestStateMachine:
    def test_everything_starts_alive(self, qs):
        det = FailureDetector(qs.cluster, CFG)
        for m in qs.machines:
            assert det.state(m) is MachineHealth.ALIVE
            assert det.eligible(m)
        assert det.suspected_machines() == []

    def test_crash_walks_alive_suspected_dead(self, qs):
        det = FailureDetector(qs.cluster, CFG, metrics=qs.metrics)
        m0 = qs.machines[0]
        qs.runtime.fail_machine(m0)
        # One missed heartbeat is not enough to suspect.
        qs.run(until=1.5e-3)
        assert det.state(m0) is MachineHealth.ALIVE
        qs.run(until=2.5e-3)  # 2 misses -> SUSPECTED
        assert det.state(m0) is MachineHealth.SUSPECTED
        assert not det.eligible(m0)
        qs.run(until=4.5e-3)  # 4 misses -> DEAD
        assert det.state(m0) is MachineHealth.DEAD
        assert det.suspects == 1
        assert det.confirms == 1
        assert qs.metrics.counter("ft.confirms").total == 1

    def test_confirm_fires_listener_once(self, qs):
        det = FailureDetector(qs.cluster, CFG)
        confirmed = []
        det.on_confirm(confirmed.append)
        qs.runtime.fail_machine(qs.machines[0])
        qs.run(until=0.02)
        assert confirmed == [qs.machines[0]]

    def test_false_positive_snaps_back_to_alive(self, qs):
        """A machine restored while merely SUSPECTED never dies: the
        next good heartbeat clears it, and no recovery is triggered."""
        det = FailureDetector(qs.cluster, CFG, metrics=qs.metrics)
        confirmed = []
        alive = []
        det.on_confirm(confirmed.append)
        det.on_alive(lambda m, _prev: alive.append(m))
        m0 = qs.machines[0]
        qs.runtime.fail_machine(m0)
        qs.run(until=2.5e-3)
        assert det.state(m0) is MachineHealth.SUSPECTED
        qs.runtime.restore_machine(m0)
        qs.run(until=0.02)
        assert det.state(m0) is MachineHealth.ALIVE
        assert confirmed == []
        assert alive == [m0]
        assert det.recoveries == 1
        assert qs.metrics.counter("ft.machines_back").total == 1

    def test_restore_after_confirm_returns_to_alive(self, qs):
        det = FailureDetector(qs.cluster, CFG)
        m0 = qs.machines[0]
        qs.runtime.fail_machine(m0)
        qs.run(until=0.01)
        assert det.state(m0) is MachineHealth.DEAD
        qs.runtime.restore_machine(m0)
        qs.run(until=0.02)
        assert det.state(m0) is MachineHealth.ALIVE
        assert det.eligible(m0)


class TestPlacementGate:
    def test_suspected_machine_excluded_from_placement(self):
        qs = make_qs(enable_split_merge=False,
                     enable_global_scheduler=False)
        manager = qs.enable_recovery(CFG)
        m0, m1 = qs.machines
        qs.runtime.fail_machine(m0)
        qs.run(until=2.5e-3)  # suspected, not yet confirmed
        assert manager.detector.state(m0) is MachineHealth.SUSPECTED
        assert qs.eligible_machines() == [m1]
        ref = qs.spawn_memory()
        assert ref.machine is m1

    def test_health_gate_installed_by_enable_recovery(self):
        qs = make_qs(enable_split_merge=False,
                     enable_global_scheduler=False)
        manager = qs.enable_recovery()
        assert qs.placement.health == manager.eligible
