"""Tests for the repro.ft recovery subsystem."""
