"""Unit tests for the event primitives."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    EventAlreadyTriggered,
    Simulator,
)


@pytest.fixture
def sim():
    return Simulator()


class TestEvent:
    def test_starts_untriggered(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed
        with pytest.raises(AttributeError):
            _ = ev.value

    def test_succeed_sets_value_after_processing(self, sim):
        ev = sim.event()
        ev.succeed(42)
        assert ev.triggered
        assert not ev.processed
        sim.run()
        assert ev.processed
        assert ev.value == 42
        assert ev.ok

    def test_fail_carries_exception(self, sim):
        ev = sim.event()
        err = RuntimeError("boom")
        ev.fail(err)
        sim.run()
        assert not ev.ok
        assert ev.value is err

    def test_double_trigger_raises(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(EventAlreadyTriggered):
            ev.succeed(2)
        with pytest.raises(EventAlreadyTriggered):
            ev.fail(RuntimeError())

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_callbacks_run_in_order(self, sim):
        ev = sim.event()
        order = []
        ev.subscribe(lambda e: order.append(1))
        ev.subscribe(lambda e: order.append(2))
        ev.succeed()
        sim.run()
        assert order == [1, 2]

    def test_late_subscriber_fires_immediately(self, sim):
        ev = sim.event()
        ev.succeed("x")
        sim.run()
        got = []
        ev.subscribe(lambda e: got.append(e.value))
        assert got == ["x"]

    def test_unsubscribe(self, sim):
        ev = sim.event()
        got = []
        cb = lambda e: got.append(1)  # noqa: E731
        ev.subscribe(cb)
        ev.unsubscribe(cb)
        ev.succeed()
        sim.run()
        assert got == []

    def test_succeed_with_delay(self, sim):
        ev = sim.event()
        seen = []
        ev.subscribe(lambda e: seen.append(sim.now))
        ev.succeed(delay=2.5)
        sim.run()
        assert seen == [2.5]


class TestTimeout:
    def test_fires_at_right_time(self, sim):
        seen = []
        t = sim.timeout(1.5, value="hello")
        t.subscribe(lambda e: seen.append((sim.now, e.value)))
        sim.run()
        assert seen == [(1.5, "hello")]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-0.1)

    def test_ordering_is_stable_for_equal_times(self, sim):
        seen = []
        for i in range(5):
            t = sim.timeout(1.0)
            t.subscribe(lambda e, i=i: seen.append(i))
        sim.run()
        assert seen == [0, 1, 2, 3, 4]


class TestConditions:
    def test_all_of_waits_for_all(self, sim):
        a, b = sim.timeout(1.0, "a"), sim.timeout(2.0, "b")
        cond = AllOf(sim, [a, b])
        done_at = []
        cond.subscribe(lambda e: done_at.append(sim.now))
        sim.run()
        assert done_at == [2.0]
        assert set(cond.value.values()) == {"a", "b"}

    def test_any_of_fires_on_first(self, sim):
        a, b = sim.timeout(1.0, "a"), sim.timeout(2.0, "b")
        cond = AnyOf(sim, [a, b])
        done_at = []
        cond.subscribe(lambda e: done_at.append(sim.now))
        sim.run()
        assert done_at == [1.0]
        assert list(cond.value.values()) == ["a"]

    def test_all_of_fails_fast(self, sim):
        a = sim.event()
        b = sim.timeout(5.0)
        cond = AllOf(sim, [a, b])
        a.fail(RuntimeError("nope"))
        sim.run(until=1.0)
        assert cond.triggered and not cond.ok

    def test_empty_all_of_succeeds_immediately(self, sim):
        cond = AllOf(sim, [])
        sim.run()
        assert cond.processed and cond.value == {}

    def test_cross_simulator_rejected(self, sim):
        other = Simulator()
        ev = other.event()
        with pytest.raises(ValueError):
            AllOf(sim, [ev])
