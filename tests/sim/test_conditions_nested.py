"""Nested condition and interrupt edge cases in the kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Interrupt, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestNestedConditions:
    def test_all_of_any_ofs(self, sim):
        a, b = sim.timeout(1.0, "a"), sim.timeout(5.0, "b")
        c, d = sim.timeout(2.0, "c"), sim.timeout(6.0, "d")
        cond = AllOf(sim, [AnyOf(sim, [a, b]), AnyOf(sim, [c, d])])
        done_at = []
        cond.subscribe(lambda e: done_at.append(sim.now))
        sim.run()
        assert done_at == [2.0]

    def test_any_of_all_ofs(self, sim):
        slow = AllOf(sim, [sim.timeout(5.0), sim.timeout(6.0)])
        fast = AllOf(sim, [sim.timeout(1.0), sim.timeout(2.0)])
        cond = AnyOf(sim, [slow, fast])
        done_at = []
        cond.subscribe(lambda e: done_at.append(sim.now))
        sim.run()
        assert done_at == [2.0]

    def test_any_of_with_pretriggered_child(self, sim):
        ev = sim.event()
        ev.succeed("early")
        sim.run()
        cond = AnyOf(sim, [ev, sim.timeout(10.0)])
        sim.run(until=1.0)
        assert cond.processed

    def test_process_waits_on_condition(self, sim):
        def proc():
            results = yield AllOf(sim, [sim.timeout(1.0, "x"),
                                        sim.timeout(2.0, "y")])
            return sorted(results.values())

        p = sim.process(proc())
        assert sim.run(until_event=p) == ["x", "y"]


class TestInterruptEdges:
    def test_interrupt_process_waiting_on_condition(self, sim):
        def proc():
            try:
                yield AllOf(sim, [sim.timeout(10.0), sim.timeout(20.0)])
            except Interrupt:
                return "bailed"

        p = sim.process(proc())
        sim.call_in(1.0, p.interrupt)
        assert sim.run(until_event=p) == "bailed"

    def test_double_interrupt_is_safe(self, sim):
        def proc():
            try:
                yield sim.timeout(10.0)
            except Interrupt:
                return "once"

        p = sim.process(proc())
        sim.call_in(1.0, p.interrupt)
        sim.call_in(1.0, p.interrupt)  # second lands after completion
        assert sim.run(until_event=p) == "once"

    def test_interrupt_then_new_wait(self, sim):
        """An interrupted process can keep waiting on new events."""
        def proc():
            total = 0
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                total += 1
            yield sim.timeout(1.0)
            return total

        p = sim.process(proc())
        sim.call_in(0.5, p.interrupt)
        assert sim.run(until_event=p) == 1
        assert sim.now == pytest.approx(1.5)
