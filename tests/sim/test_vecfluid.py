"""Vector fluid engine: toggle plumbing, slot lifecycle, handle reads.

The differential suites (``tests/property/test_vecfluid_differential``,
the chaos digest gate) pin numerical equivalence; these tests pin the
machinery around it — engine selection, numpy-free fallback, slot
growth and reuse, and that detached handles survive off-array.
"""

import math
import os
import subprocess
import sys

import pytest

import repro.sim.fluid as fluid_mod
from repro.sim import FluidScheduler, Simulator
from repro.sim.fluid import vector_supported

needs_vector = pytest.mark.skipif(
    not vector_supported(), reason="numpy not installed: no vector engine")


class TestEngineSelection:
    def test_default_is_scalar(self, monkeypatch):
        monkeypatch.delenv("REPRO_VECTOR_FLUID", raising=False)
        sched = FluidScheduler(Simulator(), 4.0)
        assert not sched.vectorized
        assert type(sched) is FluidScheduler

    @needs_vector
    def test_explicit_vector_param(self):
        sched = FluidScheduler(Simulator(), 4.0, vector=True)
        assert sched.vectorized
        assert isinstance(sched, FluidScheduler)  # same API surface

    @needs_vector
    def test_env_toggle(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_FLUID", "1")
        assert FluidScheduler(Simulator(), 4.0).vectorized
        monkeypatch.setenv("REPRO_VECTOR_FLUID", "0")
        assert not FluidScheduler(Simulator(), 4.0).vectorized

    @needs_vector
    def test_param_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_FLUID", "1")
        assert not FluidScheduler(Simulator(), 4.0, vector=False).vectorized
        monkeypatch.setenv("REPRO_VECTOR_FLUID", "0")
        assert FluidScheduler(Simulator(), 4.0, vector=True).vectorized

    def test_missing_numpy_falls_back_silently(self, monkeypatch):
        # Simulate an environment without numpy: the lazy class cache
        # records the failed import as False.
        monkeypatch.setattr(fluid_mod, "_VEC_CLS", False)
        sched = FluidScheduler(Simulator(), 4.0, vector=True)
        assert not sched.vectorized
        assert type(sched) is FluidScheduler

    def test_subclasses_never_redirect(self, monkeypatch):
        """__new__ only swaps the engine for the base class; subclasses
        built on FluidScheduler keep their own identity."""
        monkeypatch.setenv("REPRO_VECTOR_FLUID", "1")

        class Custom(FluidScheduler):
            pass

        sched = Custom(Simulator(), 4.0)
        assert type(sched) is Custom
        assert not sched.vectorized


def test_core_import_does_not_pull_numpy():
    """The scalar path must keep the library's no-numpy invariant: just
    importing repro (and touching the scalar scheduler) must not import
    numpy.  The vector engine only loads when selected."""
    code = (
        "import sys\n"
        "import repro\n"
        "from repro.sim import FluidScheduler, Simulator\n"
        "s = FluidScheduler(Simulator(), 4.0, vector=False)\n"
        "s.hold(demand=1.0)\n"
        "s.sync()\n"
        "assert 'numpy' not in sys.modules, 'numpy leaked into core import'\n"
    )
    env = dict(os.environ)
    env.pop("REPRO_VECTOR_FLUID", None)
    env["PYTHONPATH"] = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))), "src")
    subprocess.run([sys.executable, "-c", code], check=True, env=env)


@needs_vector
class TestSlotLifecycle:
    def test_growth_past_initial_capacity(self):
        sim = Simulator()
        sched = FluidScheduler(sim, 1000.0, vector=True)
        items = [sched.hold(demand=1.0, name=f"h{i}") for i in range(200)]
        sched.sync()
        assert len(sched) == 200
        assert all(it.rate == 1.0 for it in items)

    def test_slot_reuse_after_cancel(self):
        sim = Simulator()
        sched = FluidScheduler(sim, 100.0, vector=True)
        first = [sched.hold(demand=1.0) for _ in range(50)]
        for it in first[::2]:
            sched.cancel(it)
        slots_freed = {it._slot for it in first}  # -1 after release
        assert -1 in slots_freed
        second = [sched.hold(demand=2.0) for _ in range(25)]
        sched.sync()
        # Freed slots are recycled before the arrays grow again.
        assert all(it._slot >= 0 for it in second)
        assert all(it.rate == 2.0 for it in second)
        assert all(it.rate == 1.0 for it in first[1::2])

    def test_detached_handle_reads_off_array(self):
        sim = Simulator()
        sched = FluidScheduler(sim, 4.0, vector=True)
        it = sched.hold(demand=2.0)
        sched.sync()
        assert it.rate == 2.0
        sched.detach(it)
        assert it._slot == -1
        assert it.rate == 0.0
        assert it.remaining is math.inf  # singleton preserved off-array
        sched.attach(it)
        sched.sync()
        assert it._slot >= 0
        assert it.rate == 2.0

    def test_hold_remaining_is_inf_singleton_on_array(self):
        sim = Simulator()
        sched = FluidScheduler(sim, 4.0, vector=True)
        it = sched.hold(demand=1.0)
        assert it.remaining is math.inf

    def test_fail_all_releases_every_slot(self):
        sim = Simulator()
        sched = FluidScheduler(sim, 8.0, vector=True)
        items = [sched.submit(work=5.0, demand=1.0) for _ in range(10)]
        sched.sync()
        sched.fail_all(RuntimeError("machine died"))
        assert all(it._slot == -1 for it in items)
        assert len(sched) == 0
        fresh = sched.submit(work=1.0, demand=1.0)
        sched.sync()
        assert fresh.rate == 1.0

    def test_completion_on_vector_path(self):
        sim = Simulator()
        sched = FluidScheduler(sim, 2.0, vector=True)
        a = sched.submit(work=1.0, demand=1.0, name="a")
        b = sched.submit(work=2.0, demand=1.0, name="b")
        sim.run()
        assert a.done.triggered and b.done.triggered
        assert a.finished_at == 1.0
        assert b.finished_at == 2.0
