"""Timer wheel: ordering equivalence with the pure heap, and counters.

The wheel is a constant-factor optimization only — every test here pins
the contract that routing an event through a wheel slot never changes
*when* or in *what order* it fires relative to the heap-only kernel.
"""

import pytest

from repro.sim import Simulator


def _lcg(seed=12345):
    """Deterministic pseudorandom floats in [0, 1) (no global RNG)."""
    state = seed
    while True:
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        yield (state >> 11) / float(1 << 53)


def _storm(timer_wheel, n=400):
    """Schedule a mix of sub-slot, in-window, and beyond-window timers
    (some cancelled), and record the exact firing order."""
    sim = Simulator(timer_wheel=timer_wheel)
    rnd = _lcg()
    fired = []
    events = []
    for i in range(n):
        r = next(rnd)
        if r < 0.3:
            delay = next(rnd) * 5e-4          # sub-slot / current-slot
        elif r < 0.8:
            delay = next(rnd) * 0.9           # inside the wheel window
        else:
            delay = 1.0 + next(rnd) * 3.0     # beyond the window
        ev = sim.timeout(delay)
        ev.subscribe(lambda _e, i=i: fired.append((sim.now, i)))
        events.append(ev)
    for i in range(0, n, 7):
        sim.cancel(events[i])
    sim.run()
    return fired, sim


class TestOrderingEquivalence:
    def test_wheel_and_heap_fire_identically(self):
        wheel_fired, wheel_sim = _storm(True)
        heap_fired, heap_sim = _storm(False)
        assert wheel_fired == heap_fired
        assert wheel_sim.now == heap_sim.now
        assert wheel_sim.processed_events == heap_sim.processed_events

    def test_wheel_actually_engaged(self):
        _, sim = _storm(True)
        stats = sim.heap_stats()
        assert stats["wheel_inserts"] > 0
        assert stats["cascades"] > 0
        assert stats["overflow_to_heap"] > 0  # the beyond-window timers

    def test_heap_only_kernel_reports_no_wheel_traffic(self):
        _, sim = _storm(False)
        stats = sim.heap_stats()
        assert stats["wheel_inserts"] == 0
        assert stats["wheel_cancels"] == 0
        assert stats["overflow_to_heap"] == 0
        assert stats["cascades"] == 0

    def test_same_instant_respects_priority_then_seq(self):
        """Ties at one timestamp break by (priority, seq) exactly as on
        the heap, even when the entries meet in a wheel slot."""
        order = []
        for wheel in (True, False):
            sim = Simulator(timer_wheel=wheel)
            log = []
            for i in range(20):
                ev = sim.timeout(0.01)  # same slot, same instant
                ev.subscribe(lambda _e, i=i: log.append(i))
            sim.run()
            order.append(log)
        assert order[0] == order[1] == list(range(20))


class TestWheelAccounting:
    def test_cancelled_wheel_timer_never_fires(self):
        sim = Simulator(timer_wheel=True)
        fired = []
        ev = sim.timeout(0.01)   # lands in a wheel slot
        ev.subscribe(lambda _e: fired.append("no"))
        assert sim.cancel(ev)
        assert sim.heap_stats()["wheel_cancels"] == 1
        sim.run()
        assert fired == []
        assert sim.queued == 0
        assert sim.dead_entries == 0  # reclaimed by the slot drain

    def test_queued_counts_wheel_residents(self):
        sim = Simulator(timer_wheel=True)
        sim.timeout(0.01)
        sim.timeout(0.02)
        sim.timeout(5.0)  # heap (beyond window)
        assert sim.queued == 3

    def test_peek_merges_wheel_and_heap(self):
        sim = Simulator(timer_wheel=True)
        sim.timeout(5.0)
        assert sim.peek() == pytest.approx(5.0)
        sim.timeout(0.01)
        assert sim.peek() == pytest.approx(0.01)

    def test_floor_advances_with_drains(self):
        """After time passes, near-now timers route to the heap (their
        slot is no longer strictly in the future) and still fire on
        time."""
        sim = Simulator(timer_wheel=True)
        fired = []
        def proc():
            yield sim.timeout(0.5)
            ev = sim.timeout(1e-5)  # sub-slot-width: heap path
            ev.subscribe(lambda _e: fired.append(sim.now))
            yield ev
        sim.process(proc())
        sim.run()
        assert fired == [pytest.approx(0.5 + 1e-5)]

    def test_step_dispatches_from_wheel(self):
        sim = Simulator(timer_wheel=True)
        fired = []
        ev = sim.timeout(0.01)
        ev.subscribe(lambda _e: fired.append(sim.now))
        sim.step()
        assert fired == [pytest.approx(0.01)]
