"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Interrupt, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestProcessBasics:
    def test_process_runs_and_returns(self, sim):
        def proc():
            yield sim.timeout(1.0)
            yield sim.timeout(0.5)
            return "done"

        p = sim.process(proc())
        sim.run()
        assert p.processed
        assert p.value == "done"
        assert sim.now == 1.5

    def test_requires_generator(self, sim):
        with pytest.raises(TypeError):
            sim.process(lambda: None)

    def test_process_receives_event_values(self, sim):
        def proc():
            v = yield sim.timeout(1.0, value="tick")
            return v

        p = sim.process(proc())
        sim.run()
        assert p.value == "tick"

    def test_process_composes(self, sim):
        def child():
            yield sim.timeout(2.0)
            return 7

        def parent():
            v = yield sim.process(child())
            return v * 2

        p = sim.process(parent())
        sim.run()
        assert p.value == 14
        assert sim.now == 2.0

    def test_yield_non_event_fails_process(self, sim):
        def proc():
            yield 42

        p = sim.process(proc())
        sim.run()
        assert p.triggered and not p.ok
        assert isinstance(p.value, TypeError)

    def test_exception_propagates_to_parent(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise ValueError("child broke")

        def parent():
            try:
                yield sim.process(child())
            except ValueError as exc:
                return f"caught {exc}"

        p = sim.process(parent())
        sim.run()
        assert p.value == "caught child broke"

    def test_uncaught_exception_fails_process(self, sim):
        def proc():
            yield sim.timeout(0.1)
            raise KeyError("oops")

        p = sim.process(proc())
        sim.run()
        assert not p.ok
        assert isinstance(p.value, KeyError)

    def test_is_alive(self, sim):
        def proc():
            yield sim.timeout(1.0)

        p = sim.process(proc())
        assert p.is_alive
        sim.run()
        assert not p.is_alive

    def test_already_processed_event_continues_synchronously(self, sim):
        ev = sim.event()
        ev.succeed("early")
        sim.run()

        def proc():
            v = yield ev
            return v

        p = sim.process(proc())
        sim.run()
        assert p.value == "early"


class TestInterrupt:
    def test_interrupt_wakes_waiter(self, sim):
        def proc():
            try:
                yield sim.timeout(100.0)
            except Interrupt as i:
                return ("interrupted", i.cause, sim.now)

        p = sim.process(proc())
        sim.call_in(1.0, p.interrupt, "preempted")
        sim.run()
        assert p.value == ("interrupted", "preempted", 1.0)

    def test_uncaught_interrupt_fails_process(self, sim):
        def proc():
            yield sim.timeout(100.0)

        p = sim.process(proc())
        sim.call_in(1.0, p.interrupt)
        sim.run()
        assert not p.ok
        assert isinstance(p.value, Interrupt)

    def test_interrupt_finished_process_is_noop(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return "fine"

        p = sim.process(proc())
        sim.run()
        p.interrupt()
        sim.run()
        assert p.ok and p.value == "fine"

    def test_interrupted_wait_event_still_fires(self, sim):
        marker = sim.event()

        def proc():
            try:
                yield marker
            except Interrupt:
                yield sim.timeout(5.0)
                return "resumed"

        p = sim.process(proc())
        sim.call_in(1.0, p.interrupt)
        sim.call_in(2.0, marker.succeed)
        sim.run()
        assert p.value == "resumed"


class TestSimulatorRun:
    def test_run_until_time(self, sim):
        ticks = []

        def proc():
            while True:
                yield sim.timeout(1.0)
                ticks.append(sim.now)

        sim.process(proc())
        sim.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]
        assert sim.now == 3.5

    def test_run_until_event_returns_value(self, sim):
        def proc():
            yield sim.timeout(2.0)
            return 99

        p = sim.process(proc())
        sim.timeout(1000.0)  # later noise
        v = sim.run(until_event=p)
        assert v == 99
        assert sim.now == 2.0

    def test_run_until_failed_event_raises(self, sim):
        def proc():
            yield sim.timeout(1.0)
            raise RuntimeError("bad")

        p = sim.process(proc())
        with pytest.raises(RuntimeError):
            sim.run(until_event=p)

    def test_run_until_past_raises(self, sim):
        sim.timeout(1.0)
        sim.run(until=5.0)
        with pytest.raises(ValueError):
            sim.run(until=2.0)

    def test_call_at_and_call_in(self, sim):
        seen = []
        sim.call_at(2.0, seen.append, "at")
        sim.call_in(1.0, seen.append, "in")
        sim.run()
        assert seen == ["in", "at"]

    def test_stop_from_callback(self, sim):
        sim.call_in(1.0, sim.stop, "halted")
        sim.timeout(10.0)
        v = sim.run()
        assert v == "halted"
        assert sim.now == 1.0

    def test_determinism_same_seed(self):
        def run_once(seed):
            s = Simulator(seed=seed)
            rng = s.random.stream("x")
            out = []

            def proc():
                for _ in range(10):
                    yield s.timeout(rng.random())
                    out.append(s.now)

            s.process(proc())
            s.run()
            return out

        assert run_once(7) == run_once(7)
        assert run_once(7) != run_once(8)
