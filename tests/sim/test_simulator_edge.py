"""Edge-case tests for the simulator's scheduling API."""

import math

import pytest

from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestSchedulingEdges:
    def test_schedule_into_past_rejected(self, sim):
        ev = sim.event()
        with pytest.raises(ValueError):
            sim._schedule(ev, delay=-1.0)

    def test_call_at_past_rejected(self, sim):
        sim.timeout(1.0)
        sim.run()
        with pytest.raises(ValueError):
            sim.call_at(0.5, lambda: None)

    def test_peek_empty(self, sim):
        assert sim.peek() == math.inf

    def test_peek_next_event_time(self, sim):
        sim.timeout(3.0)
        sim.timeout(1.0)
        assert sim.peek() == 1.0

    def test_processed_events_counts(self, sim):
        for _ in range(5):
            sim.timeout(1.0)
        sim.run()
        assert sim.processed_events == 5

    def test_run_until_event_already_processed(self, sim):
        ev = sim.timeout(1.0, value="x")
        sim.run()
        assert sim.run(until_event=ev) == "x"

    def test_run_until_exactly_event_time(self, sim):
        fired = []
        sim.call_at(2.0, fired.append, 1)
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0

    def test_spawn_alias(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return "ok"

        p = sim.spawn(proc())
        assert sim.run(until_event=p) == "ok"

    def test_clock_advances_to_until_with_no_events(self, sim):
        sim.run(until=7.5)
        assert sim.now == 7.5

    def test_run_until_event_that_deadlocks_raises(self, sim):
        """A drained queue with the awaited event untriggered is a
        deadlock — surfacing it beats silently returning None (which
        lets callers mistake a hung operation for a completed one)."""
        ev = sim.event()  # nothing will ever succeed this
        sim.timeout(1.0)
        with pytest.raises(RuntimeError, match="deadlock"):
            sim.run(until_event=ev)

    def test_run_until_bounds_an_untriggered_event(self, sim):
        """With an explicit time bound the caller asked for a bounded
        wait, so an untriggered event is not an error."""
        ev = sim.event()
        assert sim.run(until=1.0, until_event=ev) is None
        assert sim.now == 1.0

    def test_repr(self, sim):
        assert "Simulator" in repr(sim)

    def test_start_time(self):
        sim = Simulator(start=10.0)
        assert sim.now == 10.0
        t = sim.timeout(1.0)
        sim.run()
        assert sim.now == 11.0


class TestEventOrderingAtSameTime:
    def test_fifo_within_timestamp(self, sim):
        order = []
        for i in range(10):
            sim.call_in(1.0, order.append, i)
        sim.run()
        assert order == list(range(10))

    def test_nested_zero_delay_events_make_progress(self, sim):
        """Zero-delay chains execute in bounded steps per timestamp."""
        count = [0]

        def chain():
            count[0] += 1
            if count[0] < 100:
                sim.call_in(0.0, chain)

        sim.call_in(0.0, chain)
        sim.run(until=1.0)
        assert count[0] == 100
        assert sim.now == 1.0


class TestCancellation:
    def test_cancel_skips_callbacks(self, sim):
        fired = []
        ev = sim.call_in(1.0, fired.append, 1)
        assert sim.cancel(ev) is True
        sim.run()
        assert fired == []
        assert ev.cancelled

    def test_cancel_twice_returns_false(self, sim):
        ev = sim.call_in(1.0, lambda: None)
        assert sim.cancel(ev) is True
        assert sim.cancel(ev) is False
        assert sim.dead_entries == 1

    def test_cancel_processed_event_returns_false(self, sim):
        ev = sim.timeout(1.0)
        sim.run()
        assert sim.cancel(ev) is False
        assert sim.dead_entries == 0

    def test_cancel_untriggered_plain_event_returns_false(self, sim):
        ev = sim.event()  # never scheduled
        assert sim.cancel(ev) is False

    def test_dead_entries_reclaimed_on_pop(self, sim):
        keep = sim.timeout(2.0)
        for _ in range(5):
            sim.cancel(sim.timeout(1.0))
        assert sim.dead_entries == 5
        assert sim.queued == 1
        sim.run()
        assert sim.dead_entries == 0
        assert sim.processed_events == 1  # only the live one
        assert sim.now == 2.0

    def test_peek_skips_tombstones(self, sim):
        sim.timeout(3.0)
        dead = sim.timeout(1.0)
        sim.cancel(dead)
        assert sim.peek() == 3.0


class TestHeapCompaction:
    def test_mass_cancellation_triggers_compaction(self, sim):
        events = [sim.timeout(1.0) for _ in range(200)]
        for ev in events[:150]:
            sim.cancel(ev)
        assert sim.compactions >= 1
        # any stragglers cancelled after the sweep stay below threshold
        assert sim.dead_entries < 64
        assert sim.queued == 50
        sim.run()
        assert sim.processed_events == 50

    def test_small_heaps_are_not_compacted(self, sim):
        for _ in range(10):
            sim.cancel(sim.timeout(1.0))
        assert sim.compactions == 0  # below _COMPACT_MIN_DEAD
        assert sim.dead_entries == 10

    def test_heap_stats_dict(self, sim):
        sim.timeout(1.0)
        sim.cancel(sim.timeout(2.0))
        stats = sim.heap_stats()
        # 1.0 s and 2.0 s are beyond the wheel window, so both inserts
        # overflow to the heap.
        assert stats == {"queued": 1, "dead_entries": 1, "compactions": 0,
                         "cancellations": 1, "tombstones_popped": 0,
                         "wheel_inserts": 0, "wheel_cancels": 0,
                         "overflow_to_heap": 2, "cascades": 0}

    def test_repr_shows_heap_diagnostics(self, sim):
        sim.cancel(sim.timeout(1.0))
        r = repr(sim)
        assert "queued=0" in r
        assert "dead=1" in r
        assert "compactions=" in r

    def test_metrics_record_heap_stats(self, sim):
        from repro.metrics import MetricsRecorder

        metrics = MetricsRecorder(sim)
        sim.timeout(1.0)
        sim.cancel(sim.timeout(2.0))
        stats = metrics.record_heap_stats()
        assert stats["queued"] == 1
        assert stats["dead_entries"] == 1
        assert metrics.gauge("sim.heap.queued").level == 1
        assert metrics.gauge("sim.heap.dead_entries").level == 1


class TestPendingFlushDraining:
    """Coalesced fluid reassignments must complete before time advances
    — including under step()-driven execution."""

    def _dirty_scheduler_in_process(self, sim):
        from repro.sim import FluidScheduler

        sched = FluidScheduler(sim, 2.0, name="cpu")
        out = {}

        def burst():
            out["item"] = sched.submit(work=4.0, demand=2.0)
            yield sim.timeout(10.0)

        sim.process(burst())
        return sched, out

    def test_step_drains_flushes_before_advancing(self, sim):
        sched, out = self._dirty_scheduler_in_process(sim)
        sim.step()  # runs the process: submit marks the scheduler dirty
        for _ in range(10):
            if out["item"].done.triggered:
                break
            sim.step()
        assert out["item"].done.triggered
        assert sim.now == pytest.approx(2.0)

    def test_run_observes_flush_at_marking_timestamp(self, sim):
        sched, out = self._dirty_scheduler_in_process(sim)
        times = []
        sched.add_observer(lambda s: times.append(sim.now))
        sim.run()
        assert times[0] == 0.0  # reassigned before leaving t=0
