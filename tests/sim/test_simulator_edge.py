"""Edge-case tests for the simulator's scheduling API."""

import math

import pytest

from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestSchedulingEdges:
    def test_schedule_into_past_rejected(self, sim):
        ev = sim.event()
        with pytest.raises(ValueError):
            sim._schedule(ev, delay=-1.0)

    def test_call_at_past_rejected(self, sim):
        sim.timeout(1.0)
        sim.run()
        with pytest.raises(ValueError):
            sim.call_at(0.5, lambda: None)

    def test_peek_empty(self, sim):
        assert sim.peek() == math.inf

    def test_peek_next_event_time(self, sim):
        sim.timeout(3.0)
        sim.timeout(1.0)
        assert sim.peek() == 1.0

    def test_processed_events_counts(self, sim):
        for _ in range(5):
            sim.timeout(1.0)
        sim.run()
        assert sim.processed_events == 5

    def test_run_until_event_already_processed(self, sim):
        ev = sim.timeout(1.0, value="x")
        sim.run()
        assert sim.run(until_event=ev) == "x"

    def test_run_until_exactly_event_time(self, sim):
        fired = []
        sim.call_at(2.0, fired.append, 1)
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0

    def test_spawn_alias(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return "ok"

        p = sim.spawn(proc())
        assert sim.run(until_event=p) == "ok"

    def test_clock_advances_to_until_with_no_events(self, sim):
        sim.run(until=7.5)
        assert sim.now == 7.5

    def test_repr(self, sim):
        assert "Simulator" in repr(sim)

    def test_start_time(self):
        sim = Simulator(start=10.0)
        assert sim.now == 10.0
        t = sim.timeout(1.0)
        sim.run()
        assert sim.now == 11.0


class TestEventOrderingAtSameTime:
    def test_fifo_within_timestamp(self, sim):
        order = []
        for i in range(10):
            sim.call_in(1.0, order.append, i)
        sim.run()
        assert order == list(range(10))

    def test_nested_zero_delay_events_make_progress(self, sim):
        """Zero-delay chains execute in bounded steps per timestamp."""
        count = [0]

        def chain():
            count[0] += 1
            if count[0] < 100:
                sim.call_in(0.0, chain)

        sim.call_in(0.0, chain)
        sim.run(until=1.0)
        assert count[0] == 100
        assert sim.now == 1.0
