"""Unit tests for the fluid scheduler (CPU/NIC/IOPS rate model)."""

import math

import pytest

from repro.sim import FluidScheduler, Simulator, UnboundResource


@pytest.fixture
def sim():
    return Simulator()


def cpu(sim, cores=4.0):
    return FluidScheduler(sim, cores, name="cpu")


class TestSingleItem:
    def test_full_rate_completion_time(self, sim):
        sched = cpu(sim, cores=2.0)
        item = sched.submit(work=4.0, demand=2.0)
        sim.run(until_event=item.done)
        assert sim.now == pytest.approx(2.0)
        assert item.finished_at == pytest.approx(2.0)

    def test_demand_caps_rate(self, sim):
        sched = cpu(sim, cores=8.0)
        item = sched.submit(work=2.0, demand=1.0)  # one thread
        assert item.rate == pytest.approx(1.0)
        sim.run(until_event=item.done)
        assert sim.now == pytest.approx(2.0)

    def test_zero_work_completes_immediately(self, sim):
        sched = cpu(sim)
        item = sched.submit(work=0.0)
        assert item.done.triggered
        assert not item.active

    def test_negative_work_rejected(self, sim):
        with pytest.raises(ValueError):
            cpu(sim).submit(work=-1.0)

    def test_nonpositive_demand_rejected(self, sim):
        with pytest.raises(ValueError):
            cpu(sim).submit(work=1.0, demand=0.0)


class TestFairSharing:
    def test_equal_items_share_equally(self, sim):
        sched = cpu(sim, cores=2.0)
        a = sched.submit(work=2.0, demand=2.0)
        b = sched.submit(work=2.0, demand=2.0)
        assert a.rate == pytest.approx(1.0)
        assert b.rate == pytest.approx(1.0)
        sim.run()
        assert a.finished_at == pytest.approx(2.0)
        assert b.finished_at == pytest.approx(2.0)

    def test_water_filling_respects_small_demands(self, sim):
        sched = cpu(sim, cores=10.0)
        small = sched.submit(work=100.0, demand=1.0)
        big = sched.submit(work=100.0, demand=20.0)
        assert small.rate == pytest.approx(1.0)
        assert big.rate == pytest.approx(9.0)

    def test_rates_rebalance_on_completion(self, sim):
        sched = cpu(sim, cores=2.0)
        short = sched.submit(work=1.0, demand=2.0)
        long = sched.submit(work=3.0, demand=2.0)
        # both at 1.0 until short finishes at t=1, then long at 2.0
        sim.run(until_event=short.done)
        assert sim.now == pytest.approx(1.0)
        sim.run(until_event=long.done)
        # long did 1 unit by t=1, then 2 more at rate 2 -> t=2
        assert sim.now == pytest.approx(2.0)

    def test_load_never_exceeds_capacity(self, sim):
        sched = cpu(sim, cores=3.0)
        for i in range(10):
            sched.submit(work=5.0, demand=1.0)
        assert sched.load == pytest.approx(3.0)


class TestPriorities:
    def test_high_priority_preempts(self, sim):
        sched = cpu(sim, cores=2.0)
        low = sched.submit(work=4.0, demand=2.0, priority=2)
        assert low.rate == pytest.approx(2.0)
        hi = sched.submit(work=2.0, demand=2.0, priority=0)
        assert hi.rate == pytest.approx(2.0)
        assert low.rate == pytest.approx(0.0)
        assert low.starved
        sim.run(until_event=hi.done)
        assert sim.now == pytest.approx(1.0)
        assert low.rate == pytest.approx(2.0)

    def test_leftover_flows_to_lower_priority(self, sim):
        sched = cpu(sim, cores=4.0)
        hi = sched.submit(work=100.0, demand=1.0, priority=0)
        low = sched.submit(work=100.0, demand=4.0, priority=1)
        assert hi.rate == pytest.approx(1.0)
        assert low.rate == pytest.approx(3.0)

    def test_preempted_work_is_preserved(self, sim):
        sched = cpu(sim, cores=1.0)
        low = sched.submit(work=2.0, demand=1.0, priority=2)
        sim.run(until=1.0)  # low has done 1.0 of 2.0
        hold = sched.hold(demand=1.0, priority=0)
        sim.run(until=5.0)  # starved for 4s
        sched.cancel(hold)
        sim.run(until_event=low.done)
        assert sim.now == pytest.approx(6.0)

    def test_queueing_delay_signal(self, sim):
        sched = cpu(sim, cores=1.0)
        sched.hold(demand=1.0, priority=0)
        low = sched.submit(work=1.0, demand=1.0, priority=1)
        sim.run(until=0.003)
        assert low.starved
        assert low.queueing_delay(sim.now) == pytest.approx(0.003)


class TestHoldAndDetach:
    def test_hold_never_completes(self, sim):
        sched = cpu(sim)
        h = sched.hold(demand=1.0)
        sim.run(until=100.0)
        assert not h.done.triggered
        assert h.remaining is math.inf

    def test_detach_preserves_remaining(self, sim):
        sched = cpu(sim, cores=1.0)
        item = sched.submit(work=3.0, demand=1.0)
        sim.run(until=1.0)
        remaining = sched.detach(item)
        assert remaining == pytest.approx(2.0)
        assert not item.active
        sim.run(until=10.0)  # no progress while detached
        other = cpu(sim, cores=2.0)
        other.attach(item)
        sim.run(until_event=item.done)
        assert sim.now == pytest.approx(12.0)  # 2.0 work at demand 1.0

    def test_detach_unknown_item_raises(self, sim):
        a, b = cpu(sim), cpu(sim)
        item = a.submit(work=1.0)
        with pytest.raises(UnboundResource):
            b.detach(item)

    def test_attach_completed_item_raises(self, sim):
        sched = cpu(sim)
        item = sched.submit(work=0.5, demand=1.0)
        sim.run(until_event=item.done)
        with pytest.raises(UnboundResource):
            sched.attach(item)

    def test_cancelled_timer_does_not_complete_item(self, sim):
        sched = cpu(sim, cores=1.0)
        item = sched.submit(work=1.0, demand=1.0)
        sim.run(until=0.5)
        sched.cancel(item)
        sim.run(until=10.0)
        assert not item.done.triggered


class TestCapacityChange:
    def test_capacity_increase_speeds_completion(self, sim):
        sched = cpu(sim, cores=1.0)
        item = sched.submit(work=4.0, demand=4.0)
        sim.run(until=1.0)
        sched.set_capacity(3.0)
        sim.run(until_event=item.done)
        assert sim.now == pytest.approx(2.0)  # 1 + 3/3

    def test_capacity_zero_starves_all(self, sim):
        sched = cpu(sim, cores=2.0)
        item = sched.submit(work=1.0, demand=1.0)
        sched.set_capacity(0.0)
        sim.run(until=10.0)
        assert not item.done.triggered
        assert item.starved


class TestAccounting:
    def test_served_integral_tracks_work(self, sim):
        sched = cpu(sim, cores=2.0)
        sched.submit(work=3.0, demand=2.0)
        sim.run(until=5.0)
        assert sched.utilization_since(0.0, 0.0) == pytest.approx(0.3)

    def test_per_priority_accounting(self, sim):
        sched = cpu(sim, cores=2.0)
        sched.submit(work=2.0, demand=1.0, priority=0)
        sched.submit(work=2.0, demand=1.0, priority=1)
        sim.run(until=2.0)
        sched._settle()
        assert sched.served_by_priority[0] == pytest.approx(2.0)
        assert sched.served_by_priority[1] == pytest.approx(2.0)

    def test_free_capacity_respects_priority(self, sim):
        sched = cpu(sim, cores=4.0)
        sched.hold(demand=1.0, priority=0)
        sched.hold(demand=2.0, priority=1)
        # a new priority-0 item sees everything but the prio-0 hold
        assert sched.free_capacity(priority=0) == pytest.approx(3.0)
        # a new priority-1 (or lower) item sees 4 - 1 - 2
        assert sched.free_capacity(priority=1) == pytest.approx(1.0)
        assert sched.free_capacity(priority=2) == pytest.approx(1.0)

    def test_observer_called_on_reassign(self, sim):
        sched = cpu(sim)
        calls = []
        sched.add_observer(lambda s: calls.append(sim.now))
        sched.submit(work=1.0)
        assert calls


class TestManyItems:
    def test_fifo_completion_of_identical_items(self, sim):
        sched = cpu(sim, cores=1.0)
        items = [sched.submit(work=1.0, demand=1.0) for _ in range(5)]
        sim.run()
        # processor sharing: all finish simultaneously at t=5
        for it in items:
            assert it.finished_at == pytest.approx(5.0)

    def test_mass_conservation(self, sim):
        """Total served work equals total submitted work."""
        sched = cpu(sim, cores=3.0)
        rng = sim.random.stream("t")
        total = 0.0
        for i in range(50):
            w = 0.1 + rng.random()
            total += w
            sched.submit(work=w, demand=1.0 + rng.random() * 3)
        sim.run()
        sched._settle()
        assert sched.served_integral == pytest.approx(total, rel=1e-6)


class TestFailAll:
    def test_fail_all_propagates_to_blocked_items(self, sim):
        sched = cpu(sim)
        item = sched.submit(work=10.0)
        sched.fail_all(RuntimeError("machine died"))
        assert item.done.triggered
        assert not item.done.ok
        assert not sched.items

    def test_fail_all_on_empty_scheduler_is_noop(self, sim):
        sched = cpu(sim)
        calls = []
        sched.add_observer(lambda s: calls.append(sim.now))
        sched.fail_all(RuntimeError("machine died"))
        assert calls == []          # no reassignment, no observer churn
        assert sched.load == 0.0
        # the scheduler is still usable afterwards
        item = sched.submit(work=1.0, demand=1.0)
        sim.run(until_event=item.done)
        assert item.done.ok


class TestCoalescedReassignment:
    """A burst of same-instant mutations costs one water-fill, and the
    deferral is invisible: reads always see fresh rates."""

    def test_burst_in_process_coalesces_observer_calls(self, sim):
        sched = cpu(sim, cores=4.0)
        calls = []
        sched.add_observer(lambda s: calls.append(sim.now))

        def burst():
            for _ in range(10):
                sched.submit(work=1.0, demand=1.0)
            yield sim.timeout(0.1)

        sim.process(burst())
        sim.run()
        # 10 submits at t=0 -> one coalesced reassignment, not ten.
        assert calls.count(0.0) == 1

    def test_read_inside_burst_sees_fresh_rates(self, sim):
        sched = cpu(sim, cores=2.0)
        seen = []

        def burst():
            a = sched.submit(work=5.0, demand=2.0)
            b = sched.submit(work=5.0, demand=2.0)
            seen.append((a.rate, b.rate, sched.load))
            yield sim.timeout(0.01)

        sim.process(burst())
        sim.run(until=0.01)
        assert seen == [(1.0, 1.0, 2.0)]

    def test_submit_cancel_same_instant_leaves_no_trace(self, sim):
        sched = cpu(sim, cores=2.0)
        keeper = sched.submit(work=2.0, demand=2.0)

        def churn():
            for _ in range(20):
                it = sched.submit(work=100.0, demand=2.0)
                sched.cancel(it)
            yield sim.timeout(0.0)

        sim.process(churn())
        sim.run(until_event=keeper.done)
        # the cancelled flock never absorbed capacity for finite time
        assert sim.now == pytest.approx(1.0)

    def test_free_capacity_is_fresh_after_mutation(self, sim):
        sched = cpu(sim, cores=4.0)

        def probe():
            sched.hold(demand=1.0, priority=0)
            yield sim.timeout(0.0)

        sim.process(probe())
        sim.run(until=0.0)
        assert sched.free_capacity(priority=1) == pytest.approx(3.0)
        assert sched.free_capacity(priority=0) == pytest.approx(3.0)


class TestWaterFillDeterminism:
    """Rates depend on (demand, priority), never on submission order."""

    def _submit_all(self, spec):
        sim = Simulator()
        sched = cpu(sim, cores=3.0)
        items = {name: sched.submit(work=w, demand=d, name=name)
                 for name, w, d in spec}
        return sim, items

    def test_distinct_demands_are_order_invariant_bitwise(self):
        spec = [("a", 4.0, 0.5), ("b", 4.0, 1.25), ("c", 4.0, 2.5)]
        orders = [spec, spec[::-1], [spec[1], spec[2], spec[0]]]
        rates, finishes = [], []
        for order in orders:
            sim, items = self._submit_all(order)
            rates.append({n: it.rate for n, it in items.items()})
            sim.run()
            finishes.append({n: it.finished_at for n, it in items.items()})
        # Distinct demands pin each item's position in the sorted
        # water-fill, so rate vectors and completion times are
        # *bit-identical* across submission orders.
        assert rates[0] == rates[1] == rates[2]
        assert finishes[0] == finishes[1] == finishes[2]

    def test_equal_demands_complete_together_in_any_order(self):
        runs = []
        for names in (("a", "b", "c"), ("c", "a", "b"), ("b", "c", "a")):
            sim = Simulator()
            sched = cpu(sim, cores=2.0)
            items = [sched.submit(work=3.0, demand=1.5, name=n)
                     for n in names]
            rate_vec = sorted(it.rate for it in items)
            sim.run()
            fins = {it.finished_at for it in items}
            assert len(fins) == 1, "equal peers must finish simultaneously"
            runs.append((rate_vec, fins.pop()))
        ref_rates, ref_finish = runs[0]
        for rate_vec, finish in runs[1:]:
            assert rate_vec == pytest.approx(ref_rates, rel=1e-12)
            assert finish == pytest.approx(ref_finish, rel=1e-12)
