"""Unit tests for the fluid scheduler (CPU/NIC/IOPS rate model)."""

import math

import pytest

from repro.sim import FluidScheduler, Simulator, UnboundResource


@pytest.fixture
def sim():
    return Simulator()


def cpu(sim, cores=4.0):
    return FluidScheduler(sim, cores, name="cpu")


class TestSingleItem:
    def test_full_rate_completion_time(self, sim):
        sched = cpu(sim, cores=2.0)
        item = sched.submit(work=4.0, demand=2.0)
        sim.run(until_event=item.done)
        assert sim.now == pytest.approx(2.0)
        assert item.finished_at == pytest.approx(2.0)

    def test_demand_caps_rate(self, sim):
        sched = cpu(sim, cores=8.0)
        item = sched.submit(work=2.0, demand=1.0)  # one thread
        assert item.rate == pytest.approx(1.0)
        sim.run(until_event=item.done)
        assert sim.now == pytest.approx(2.0)

    def test_zero_work_completes_immediately(self, sim):
        sched = cpu(sim)
        item = sched.submit(work=0.0)
        assert item.done.triggered
        assert not item.active

    def test_negative_work_rejected(self, sim):
        with pytest.raises(ValueError):
            cpu(sim).submit(work=-1.0)

    def test_nonpositive_demand_rejected(self, sim):
        with pytest.raises(ValueError):
            cpu(sim).submit(work=1.0, demand=0.0)


class TestFairSharing:
    def test_equal_items_share_equally(self, sim):
        sched = cpu(sim, cores=2.0)
        a = sched.submit(work=2.0, demand=2.0)
        b = sched.submit(work=2.0, demand=2.0)
        assert a.rate == pytest.approx(1.0)
        assert b.rate == pytest.approx(1.0)
        sim.run()
        assert a.finished_at == pytest.approx(2.0)
        assert b.finished_at == pytest.approx(2.0)

    def test_water_filling_respects_small_demands(self, sim):
        sched = cpu(sim, cores=10.0)
        small = sched.submit(work=100.0, demand=1.0)
        big = sched.submit(work=100.0, demand=20.0)
        assert small.rate == pytest.approx(1.0)
        assert big.rate == pytest.approx(9.0)

    def test_rates_rebalance_on_completion(self, sim):
        sched = cpu(sim, cores=2.0)
        short = sched.submit(work=1.0, demand=2.0)
        long = sched.submit(work=3.0, demand=2.0)
        # both at 1.0 until short finishes at t=1, then long at 2.0
        sim.run(until_event=short.done)
        assert sim.now == pytest.approx(1.0)
        sim.run(until_event=long.done)
        # long did 1 unit by t=1, then 2 more at rate 2 -> t=2
        assert sim.now == pytest.approx(2.0)

    def test_load_never_exceeds_capacity(self, sim):
        sched = cpu(sim, cores=3.0)
        for i in range(10):
            sched.submit(work=5.0, demand=1.0)
        assert sched.load == pytest.approx(3.0)


class TestPriorities:
    def test_high_priority_preempts(self, sim):
        sched = cpu(sim, cores=2.0)
        low = sched.submit(work=4.0, demand=2.0, priority=2)
        assert low.rate == pytest.approx(2.0)
        hi = sched.submit(work=2.0, demand=2.0, priority=0)
        assert hi.rate == pytest.approx(2.0)
        assert low.rate == pytest.approx(0.0)
        assert low.starved
        sim.run(until_event=hi.done)
        assert sim.now == pytest.approx(1.0)
        assert low.rate == pytest.approx(2.0)

    def test_leftover_flows_to_lower_priority(self, sim):
        sched = cpu(sim, cores=4.0)
        hi = sched.submit(work=100.0, demand=1.0, priority=0)
        low = sched.submit(work=100.0, demand=4.0, priority=1)
        assert hi.rate == pytest.approx(1.0)
        assert low.rate == pytest.approx(3.0)

    def test_preempted_work_is_preserved(self, sim):
        sched = cpu(sim, cores=1.0)
        low = sched.submit(work=2.0, demand=1.0, priority=2)
        sim.run(until=1.0)  # low has done 1.0 of 2.0
        hold = sched.hold(demand=1.0, priority=0)
        sim.run(until=5.0)  # starved for 4s
        sched.cancel(hold)
        sim.run(until_event=low.done)
        assert sim.now == pytest.approx(6.0)

    def test_queueing_delay_signal(self, sim):
        sched = cpu(sim, cores=1.0)
        sched.hold(demand=1.0, priority=0)
        low = sched.submit(work=1.0, demand=1.0, priority=1)
        sim.run(until=0.003)
        assert low.starved
        assert low.queueing_delay(sim.now) == pytest.approx(0.003)


class TestHoldAndDetach:
    def test_hold_never_completes(self, sim):
        sched = cpu(sim)
        h = sched.hold(demand=1.0)
        sim.run(until=100.0)
        assert not h.done.triggered
        assert h.remaining is math.inf

    def test_detach_preserves_remaining(self, sim):
        sched = cpu(sim, cores=1.0)
        item = sched.submit(work=3.0, demand=1.0)
        sim.run(until=1.0)
        remaining = sched.detach(item)
        assert remaining == pytest.approx(2.0)
        assert not item.active
        sim.run(until=10.0)  # no progress while detached
        other = cpu(sim, cores=2.0)
        other.attach(item)
        sim.run(until_event=item.done)
        assert sim.now == pytest.approx(12.0)  # 2.0 work at demand 1.0

    def test_detach_unknown_item_raises(self, sim):
        a, b = cpu(sim), cpu(sim)
        item = a.submit(work=1.0)
        with pytest.raises(UnboundResource):
            b.detach(item)

    def test_attach_completed_item_raises(self, sim):
        sched = cpu(sim)
        item = sched.submit(work=0.5, demand=1.0)
        sim.run(until_event=item.done)
        with pytest.raises(UnboundResource):
            sched.attach(item)

    def test_cancelled_timer_does_not_complete_item(self, sim):
        sched = cpu(sim, cores=1.0)
        item = sched.submit(work=1.0, demand=1.0)
        sim.run(until=0.5)
        sched.cancel(item)
        sim.run(until=10.0)
        assert not item.done.triggered


class TestCapacityChange:
    def test_capacity_increase_speeds_completion(self, sim):
        sched = cpu(sim, cores=1.0)
        item = sched.submit(work=4.0, demand=4.0)
        sim.run(until=1.0)
        sched.set_capacity(3.0)
        sim.run(until_event=item.done)
        assert sim.now == pytest.approx(2.0)  # 1 + 3/3

    def test_capacity_zero_starves_all(self, sim):
        sched = cpu(sim, cores=2.0)
        item = sched.submit(work=1.0, demand=1.0)
        sched.set_capacity(0.0)
        sim.run(until=10.0)
        assert not item.done.triggered
        assert item.starved


class TestAccounting:
    def test_served_integral_tracks_work(self, sim):
        sched = cpu(sim, cores=2.0)
        sched.submit(work=3.0, demand=2.0)
        sim.run(until=5.0)
        assert sched.utilization_since(0.0, 0.0) == pytest.approx(0.3)

    def test_per_priority_accounting(self, sim):
        sched = cpu(sim, cores=2.0)
        sched.submit(work=2.0, demand=1.0, priority=0)
        sched.submit(work=2.0, demand=1.0, priority=1)
        sim.run(until=2.0)
        sched._settle()
        assert sched.served_by_priority[0] == pytest.approx(2.0)
        assert sched.served_by_priority[1] == pytest.approx(2.0)

    def test_free_capacity_respects_priority(self, sim):
        sched = cpu(sim, cores=4.0)
        sched.hold(demand=1.0, priority=0)
        sched.hold(demand=2.0, priority=1)
        # a new priority-0 item sees everything but the prio-0 hold
        assert sched.free_capacity(priority=0) == pytest.approx(3.0)
        # a new priority-1 (or lower) item sees 4 - 1 - 2
        assert sched.free_capacity(priority=1) == pytest.approx(1.0)
        assert sched.free_capacity(priority=2) == pytest.approx(1.0)

    def test_observer_called_on_reassign(self, sim):
        sched = cpu(sim)
        calls = []
        sched.add_observer(lambda s: calls.append(sim.now))
        sched.submit(work=1.0)
        assert calls


class TestManyItems:
    def test_fifo_completion_of_identical_items(self, sim):
        sched = cpu(sim, cores=1.0)
        items = [sched.submit(work=1.0, demand=1.0) for _ in range(5)]
        sim.run()
        # processor sharing: all finish simultaneously at t=5
        for it in items:
            assert it.finished_at == pytest.approx(5.0)

    def test_mass_conservation(self, sim):
        """Total served work equals total submitted work."""
        sched = cpu(sim, cores=3.0)
        rng = sim.random.stream("t")
        total = 0.0
        for i in range(50):
            w = 0.1 + rng.random()
            total += w
            sched.submit(work=w, demand=1.0 + rng.random() * 3)
        sim.run()
        sched._settle()
        assert sched.served_integral == pytest.approx(total, rel=1e-6)
