"""Tests for the fault vocabulary and seeded plan expansion."""

import pytest

from repro.chaos import (
    FaultSchedule,
    MachineCrash,
    MachineRestart,
    MemoryPressure,
    MigrationFlakiness,
    NicDegrade,
    RandomFaultPlan,
)
from repro.units import GiB


class TestFaultSchedule:
    def test_sorted_by_time(self):
        sched = FaultSchedule([
            MachineCrash(at=0.5, machine="b"),
            MachineCrash(at=0.1, machine="a"),
        ])
        assert [f.at for f in sched] == [0.1, 0.5]

    def test_rejects_negative_times(self):
        with pytest.raises(ValueError):
            FaultSchedule([MachineCrash(at=-0.1, machine="a")])

    def test_equality_and_describe(self):
        a = FaultSchedule([MachineCrash(at=0.1, machine="a")])
        b = FaultSchedule([MachineCrash(at=0.1, machine="a")])
        c = FaultSchedule([MachineCrash(at=0.2, machine="a")])
        assert a == b and a != c
        assert "MachineCrash" in a.describe()
        assert "machine='a'" in a.describe()

    def test_empty_schedule_is_fine(self):
        sched = FaultSchedule()
        assert len(sched) == 0
        assert "(empty)" in sched.describe()


class TestRandomFaultPlan:
    def plan(self, seed=1, **kw):
        kw.setdefault("machines", ["m0", "m1", "m2"])
        kw.setdefault("duration", 1.0)
        return RandomFaultPlan(seed=seed, **kw)

    def test_same_seed_same_schedule(self):
        assert self.plan(seed=3).schedule(4 * GiB) == \
            self.plan(seed=3).schedule(4 * GiB)

    def test_different_seed_different_schedule(self):
        schedules = {tuple(self.plan(seed=s).schedule(4 * GiB))
                     for s in range(10)}
        assert len(schedules) > 1

    def test_ensure_crash(self):
        # Even with a tiny crash probability, ensure_crash forces one.
        for seed in range(20):
            plan = self.plan(seed=seed, crash_probability=0.01)
            crashes = [f for f in plan.schedule()
                       if isinstance(f, MachineCrash)]
            assert len(crashes) >= 1

    def test_never_crashes_every_machine(self):
        for seed in range(30):
            plan = self.plan(seed=seed, crash_probability=1.0)
            crashed = {f.machine for f in plan.schedule()
                       if isinstance(f, MachineCrash)}
            assert len(crashed) < len(plan.machines)

    def test_faults_inside_horizon(self):
        for seed in range(10):
            for f in self.plan(seed=seed).schedule(4 * GiB):
                assert 0.0 <= f.at <= 1.0

    def test_crashes_land_mid_experiment(self):
        for seed in range(10):
            for f in self.plan(seed=seed).schedule():
                if isinstance(f, MachineCrash):
                    assert 0.1 <= f.at <= 0.9

    def test_no_pressure_without_dram_size(self):
        for seed in range(10):
            faults = self.plan(seed=seed).schedule(dram_bytes=0.0)
            assert not any(isinstance(f, MemoryPressure) for f in faults)

    def test_restart_follows_its_crash(self):
        for seed in range(10):
            faults = list(self.plan(seed=seed).schedule())
            crash_at = {f.machine: f.at for f in faults
                        if isinstance(f, MachineCrash)}
            for f in faults:
                if isinstance(f, MachineRestart):
                    assert f.at > crash_at[f.machine]

    def test_flakiness_fault_present(self):
        faults = self.plan(seed=5, migration_flakiness=0.5).schedule()
        flaky = [f for f in faults if isinstance(f, MigrationFlakiness)]
        assert len(flaky) == 1 and flaky[0].probability == 0.5

    def test_nic_degrade_fraction_bounded(self):
        for seed in range(10):
            for f in self.plan(seed=seed).schedule():
                if isinstance(f, NicDegrade):
                    assert 0.2 <= f.fraction <= 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomFaultPlan(seed=1, machines=[], duration=1.0)
        with pytest.raises(ValueError):
            RandomFaultPlan(seed=1, machines=["a"], duration=0.0)
        with pytest.raises(ValueError):
            RandomFaultPlan(seed=1, machines=["a"], duration=1.0,
                            crash_probability=1.5)
