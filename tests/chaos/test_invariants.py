"""Tests for the invariant checker: it passes on healthy runs and
catches deliberately corrupted state."""

import pytest

from repro.chaos import InvariantChecker, InvariantViolation
from repro.units import MiB

from ..conftest import make_qs


@pytest.fixture
def qs():
    return make_qs(enable_local_scheduler=False,
                   enable_global_scheduler=False,
                   enable_split_merge=False)


def checked(qs, **kw):
    return InvariantChecker(qs.runtime, **kw).attach(qs.sim)


class TestHealthyRuns:
    def test_clean_workload_passes(self, qs):
        checker = checked(qs)
        pool = qs.compute_pool(initial_members=2)
        ref = qs.spawn_memory()
        ref.call("mp_put", "k", 10 * MiB)
        for _ in range(5):
            pool.run(0.001)
        qs.run(until=0.1)
        assert checker.checks > 0
        checker.check()  # final state also holds

    def test_holds_across_migration(self, qs):
        checker = checked(qs)
        m0, m1 = qs.machines
        ref = qs.spawn_memory(machine=m0)
        qs.run(until_event=ref.call("mp_put", "k", 50 * MiB))
        qs.run(until_event=qs.runtime.migrate(ref.proclet, m1))
        assert checker.checks > 0

    def test_holds_across_machine_failure(self, qs):
        checker = checked(qs)
        m0, _ = qs.machines
        ref = qs.spawn_memory(machine=m0)
        ref.call("mp_put", "k", 10 * MiB)
        qs.run(until=0.01)
        qs.runtime.fail_machine(m0)
        qs.run(until=0.02)
        qs.runtime.restore_machine(m0)
        qs.run(until=0.03)
        assert checker.checks > 0

    def test_stride_reduces_check_frequency(self, qs):
        every = checked(qs)
        sparse = InvariantChecker(qs.runtime, stride=10).attach(qs.sim)
        qs.compute_pool(initial_members=2).run(0.001)
        qs.run(until=0.05)
        assert 0 < sparse.checks < every.checks
        sparse.detach()
        every.detach()
        n = every.checks
        qs.run(until=0.06)
        assert every.checks == n  # detached checkers stop counting

    def test_oracle_mode_runs_comparisons(self, qs):
        checker = checked(qs, oracle=True)
        qs.compute_pool(initial_members=2).run(0.005)
        qs.run(until=0.05)
        assert checker.oracle_comparisons > 0

    def test_bad_stride_rejected(self, qs):
        with pytest.raises(ValueError):
            InvariantChecker(qs.runtime, stride=0)


class TestCorruptionDetected:
    def test_double_placement(self, qs):
        checker = checked(qs)
        m0, m1 = qs.machines
        ref = qs.spawn_memory(machine=m0)
        loc = qs.runtime.locator
        loc._by_machine.setdefault(m1, set()).add(ref.proclet_id)
        with pytest.raises(InvariantViolation, match="double-placed|disagree"):
            checker.check()

    def test_locator_proclet_disagreement(self, qs):
        checker = checked(qs)
        m0, m1 = qs.machines
        ref = qs.spawn_memory(machine=m0)
        ref.proclet._machine = m1  # locator still says m0
        with pytest.raises(InvariantViolation, match="locator says"):
            checker.check()

    def test_memory_leak_detected(self, qs):
        checker = checked(qs)
        m0 = qs.machines[0]
        m0.memory.reserve(64 * MiB)  # bytes nobody accounts for
        with pytest.raises(InvariantViolation, match="DRAM ledger"):
            checker.check()

    def test_memory_underaccounting_detected(self, qs):
        checker = checked(qs)
        m0 = qs.machines[0]
        qs.spawn_memory(machine=m0)
        m0.memory.release(32 * 1024)  # bytes released out of thin air
        with pytest.raises(InvariantViolation, match="DRAM ledger"):
            checker.check()

    def test_crashed_machine_with_residual_memory(self, qs):
        checker = checked(qs)
        m0 = qs.machines[0]
        qs.runtime.fail_machine(m0)
        m0.memory.used = 10.0  # corrupt the wiped ledger
        with pytest.raises(InvariantViolation, match="crashed"):
            checker.check()

    def test_fluid_rate_corruption_detected(self, qs):
        checker = checked(qs)
        m0 = qs.machines[0]
        item = m0.cpu.sched.submit(work=10.0, demand=1.0)
        qs.run(until=0.001)
        item._rate = 1e9  # corrupt: far beyond demand and capacity
        with pytest.raises(InvariantViolation, match="rate|load"):
            checker.check()

    def test_stale_load_cache_detected(self, qs):
        checker = checked(qs)
        m0 = qs.machines[0]
        m0.cpu.sched.submit(work=10.0, demand=2.0)
        qs.run(until=0.001)
        m0.cpu.sched._load = 123.0  # corrupt the cached aggregate
        with pytest.raises(InvariantViolation, match="cached load"):
            checker.check()

    def test_permanently_gated_proclet_detected(self, qs):
        checker = checked(qs, gate_timeout=0.01)
        ref = qs.spawn_memory()
        proclet = ref.proclet
        # Simulate a stuck migration: gate never opens.
        from repro.runtime import ProcletStatus

        proclet._status = ProcletStatus.MIGRATING
        proclet._migration_gate = qs.sim.event()
        checker.check()  # first sighting: starts the clock
        qs.sim.run(until=0.1)
        with pytest.raises(InvariantViolation, match="gated"):
            checker.check()

    def test_violation_surfaces_through_run(self, qs):
        """Attached checker fails the run at the first bad event."""
        checked(qs)
        m0 = qs.machines[0]
        qs.sim.call_at(0.01, m0.memory.reserve, 64 * MiB)
        with pytest.raises(InvariantViolation):
            qs.run(until=0.02)
