"""End-to-end chaos scenario tests: determinism, crash coverage, and
the CLI entry point."""

import pytest

from repro.chaos import ChaosConfig, run_chaos


def small(seed=42, **kw):
    kw.setdefault("machines", 3)
    kw.setdefault("duration", 0.4)
    return ChaosConfig(seed=seed, **kw)


class TestScenario:
    def test_completes_with_invariants_holding(self):
        result = run_chaos(small())
        assert result.invariant_checks > 100
        assert result.injected >= 1
        assert result.tasks_done > 0

    def test_at_least_one_machine_crashes(self):
        result = run_chaos(small())
        assert result.machines_crashed >= 1

    def test_replay_is_bit_identical(self):
        a = run_chaos(small(seed=11))
        b = run_chaos(small(seed=11))
        assert a.digest() == b.digest()
        assert a.trace_lines == b.trace_lines
        assert a.counters == b.counters
        assert a.tasks_done == b.tasks_done

    def test_different_seeds_diverge(self):
        a = run_chaos(small(seed=1))
        b = run_chaos(small(seed=2))
        assert a.digest() != b.digest()

    def test_report_mentions_the_schedule(self):
        result = run_chaos(small())
        report = result.report()
        assert "digest" in report
        assert "MachineCrash" in report
        assert str(result.machines_crashed) in report

    def test_oracle_mode(self):
        result = run_chaos(small(duration=0.2, oracle=True,
                                 invariant_stride=20))
        assert result.oracle_comparisons > 0


class TestRecoveryMode:
    """Chaos with the runtime recovery subsystem active: every policy
    survives the fault schedule with invariants holding, and replays
    stay bit-identical."""

    @pytest.mark.parametrize(
        "policy", ["none", "restart", "checkpoint", "replicate", "lineage"])
    def test_policy_survives_chaos(self, policy):
        result = run_chaos(small(seed=13, recovery_policy=policy))
        assert result.invariant_checks > 100
        assert result.confirms >= result.machines_crashed
        if policy != "none":
            # Something died and something came back.
            assert result.recoveries >= 1

    def test_recovery_replay_is_bit_identical(self):
        a = run_chaos(small(seed=13, recovery_policy="checkpoint"))
        b = run_chaos(small(seed=13, recovery_policy="checkpoint"))
        assert a.digest() == b.digest()
        assert a.recoveries == b.recoveries
        assert a.call_retries == b.call_retries

    def test_policies_produce_distinct_trajectories(self):
        none = run_chaos(small(seed=13, recovery_policy="none"))
        ckpt = run_chaos(small(seed=13, recovery_policy="checkpoint"))
        assert none.digest() != ckpt.digest()

    def test_legacy_path_untouched_by_recovery_code(self):
        """recovery_policy=None must take the exact pre-subsystem path:
        zero recovery counters, app-level healing only."""
        result = run_chaos(small(seed=11))
        assert result.confirms == 0
        assert result.recoveries == 0
        assert result.sheds == 0

    def test_report_mentions_recovery(self):
        result = run_chaos(small(seed=13, recovery_policy="replicate"))
        assert "recovery (replicate)" in result.report()


class TestChaosCli:
    def test_chaos_command_deterministic(self, capsys):
        from repro.cli import main

        rc = main(["chaos", "--seed", "3", "--duration", "0.3",
                   "--machines", "3", "--check-determinism"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "deterministic" in out
        assert "MachineCrash" in out

    def test_chaos_command_stride(self, capsys):
        from repro.cli import main

        rc = main(["chaos", "--seed", "4", "--duration", "0.2",
                   "--stride", "25"])
        assert rc == 0
        assert "invariant checks" in capsys.readouterr().out
