"""Tests for the chaos injector: faults land at the right virtual time
with the right cluster-level effect."""

import pytest

from repro.chaos import (
    ChaosInjector,
    FaultSchedule,
    MachineCrash,
    MachineRestart,
    MemoryPressure,
    MemoryPressureRelease,
    MigrationFlakiness,
    NetworkPartition,
    NicDegrade,
    NicRestore,
    PartitionHeal,
)
from repro.units import MiB

from ..conftest import make_qs


@pytest.fixture
def qs():
    return make_qs(enable_local_scheduler=False,
                   enable_global_scheduler=False,
                   enable_split_merge=False)


def inject(qs, *faults):
    injector = ChaosInjector(qs.runtime, FaultSchedule(faults))
    injector.start()
    return injector


class TestInjection:
    def test_crash_and_restart_at_scheduled_times(self, qs):
        m0 = qs.machines[0]
        inject(qs,
               MachineCrash(at=0.010, machine="m0"),
               MachineRestart(at=0.020, machine="m0"))
        qs.run(until=0.005)
        assert m0.up
        qs.run(until=0.015)
        assert not m0.up
        qs.run(until=0.025)
        assert m0.up

    def test_last_machine_crash_is_skipped(self, qs):
        injector = inject(qs,
                          MachineCrash(at=0.01, machine="m0"),
                          MachineCrash(at=0.02, machine="m1"))
        qs.run(until=0.03)
        assert not qs.machines[0].up
        assert qs.machines[1].up  # skipped: would be the last survivor
        assert len(injector.skipped) == 1
        assert injector.machines_crashed == 1
        assert qs.metrics.counter("chaos.faults.skipped").total == 1

    def test_nic_degrade_and_restore(self, qs):
        m0 = qs.machines[0]
        nominal = m0.nic.bandwidth
        inject(qs,
               NicDegrade(at=0.01, machine="m0", fraction=0.25),
               NicRestore(at=0.02, machine="m0"))
        qs.run(until=0.015)
        assert m0.nic.tx.capacity == pytest.approx(0.25 * nominal)
        assert m0.nic.degraded_fraction == 0.25
        qs.run(until=0.025)
        assert m0.nic.tx.capacity == pytest.approx(nominal)

    def test_partition_stalls_transfers_until_heal(self, qs):
        m0, m1 = qs.machines
        inject(qs,
               NetworkPartition(at=0.0, a="m0", b="m1"),
               PartitionHeal(at=0.050, a="m0", b="m1"))
        qs.run(until=0.001)
        assert qs.cluster.fabric.is_partitioned(m0, m1)
        done = qs.cluster.fabric.transfer(m0, m1, 1 * MiB)
        qs.run(until=0.049)
        assert not done.triggered  # stalled behind the partition
        qs.run(until_event=done)
        assert qs.sim.now >= 0.050

    def test_memory_pressure_and_release(self, qs):
        m0 = qs.machines[0]
        inject(qs,
               MemoryPressure(at=0.01, machine="m0", nbytes=100 * MiB),
               MemoryPressureRelease(at=0.02, machine="m0"))
        qs.run(until=0.015)
        assert m0.memory.ballast == pytest.approx(100 * MiB)
        assert m0.memory.used >= 100 * MiB
        qs.run(until=0.025)
        assert m0.memory.ballast == 0.0

    def test_pressure_clamped_to_capacity(self, qs):
        m0 = qs.machines[0]
        inject(qs, MemoryPressure(at=0.01, machine="m0",
                                  nbytes=2 * m0.memory.capacity))
        qs.run(until=0.02)
        assert m0.memory.used <= m0.memory.capacity

    def test_flakiness_installs_migration_fault_hook(self, qs):
        inject(qs, MigrationFlakiness(at=0.01, probability=1.0,
                                      duration=0.5))
        qs.run(until=0.02)
        hook = qs.runtime.migration.fault_hook
        assert hook is not None
        assert hook(None, None) is True  # inside the flaky window
        qs.run(until=0.6)
        assert hook(None, None) is False  # window expired

    def test_faults_on_down_machine_are_noops(self, qs):
        """NIC/memory faults racing a crash must not resurrect state."""
        m0 = qs.machines[0]
        inject(qs,
               MachineCrash(at=0.01, machine="m0"),
               NicDegrade(at=0.02, machine="m0", fraction=0.5),
               MemoryPressure(at=0.02, machine="m0", nbytes=10 * MiB))
        qs.run(until=0.03)
        assert not m0.up
        assert m0.memory.used == 0.0

    def test_listener_and_metrics(self, qs):
        seen = []
        injector = ChaosInjector(qs.runtime, FaultSchedule([
            MachineCrash(at=0.01, machine="m0"),
            MachineRestart(at=0.02, machine="m0"),
        ]))
        injector.on_fault(seen.append)
        injector.start()
        qs.run(until=0.03)
        assert [type(f).__name__ for f in seen] == \
            ["MachineCrash", "MachineRestart"]
        assert qs.metrics.counter("chaos.faults").total == 2
        assert qs.metrics.counter("chaos.faults.MachineCrash").total == 1
        assert len(qs.runtime.tracer.by_category("chaos")) == 2
        downtimes = qs.metrics.samples("chaos.downtime")
        assert downtimes == [pytest.approx(0.01)]

    def test_double_start_rejected(self, qs):
        injector = inject(qs, MachineCrash(at=0.01, machine="m0"))
        with pytest.raises(RuntimeError):
            injector.start()
