"""Differential testing: the incremental fluid engine vs the
brute-force oracle.

The engine (:mod:`repro.sim.fluid`) maintains rates incrementally with
dirty-flags, priority buckets, and cached aggregates.  The oracle
(:mod:`repro.chaos.oracle`) recomputes the whole rate vector from first
principles with a different algorithm.  Here we drive the engine through
randomized mutation sequences — submissions, cancellations, demand and
priority changes, capacity changes (including the dips to near-zero a
chaos NIC-degrade fault produces), detach/attach, and virtual-time
advances — and require exact agreement (to float tolerance) after every
single mutation.
"""

import random

import pytest

from repro.chaos import (
    compare,
    differential_task,
    max_min_rates,
    reference_rates,
)
from repro.sim import FluidScheduler, Simulator


class TestOracleBasics:
    def test_max_min_unconstrained(self):
        assert max_min_rates([1.0, 1.0], 4.0) == [1.0, 1.0]

    def test_max_min_contended_equal_split(self):
        assert max_min_rates([5.0, 5.0], 4.0) == [2.0, 2.0]

    def test_max_min_small_demand_frozen_first(self):
        # 0.5 is frozen at its demand; the other two split the rest.
        assert max_min_rates([0.5, 5.0, 5.0], 4.0) == \
            pytest.approx([0.5, 1.75, 1.75])

    def test_max_min_zero_capacity(self):
        assert max_min_rates([1.0, 2.0], 0.0) == [0.0, 0.0]

    def test_max_min_empty(self):
        assert max_min_rates([], 4.0) == []

    def test_strict_priority_starves_lower_class(self):
        # Class 0 takes everything; class 1 gets nothing.
        rates = reference_rates([(3.0, 0), (2.0, 1)], 2.0)
        assert rates == [2.0, 0.0]

    def test_priority_leftover_flows_down(self):
        rates = reference_rates([(1.0, 0), (2.0, 1), (2.0, 1)], 4.0)
        assert rates == pytest.approx([1.0, 1.5, 1.5])


# 220 randomized mutation sequences, ~25 mutations each: every one of
# the ~5500 intermediate engine states must match the oracle exactly.
# The mutation driver lives in repro.chaos.differential so the same
# campaign can fan out across processes (repro chaos --differential).
@pytest.mark.parametrize("seed", range(220))
def test_engine_matches_oracle_after_every_mutation(seed):
    result = differential_task(seed, steps=25)
    assert result["divergences"] == [], f"seed {seed}: {result}"
    assert len(result["ops"]) == 25


@pytest.mark.parametrize("seed", range(20))
def test_oracle_agreement_survives_drain(seed):
    """After the workload drains completely, engine and oracle agree on
    the empty state too (load exactly 0)."""
    rng = random.Random(seed)
    sim = Simulator()
    sched = FluidScheduler(sim, 2.0, name="drain")
    for _ in range(rng.randrange(1, 10)):
        sched.submit(work=rng.uniform(0.01, 0.5),
                     demand=rng.uniform(0.1, 2.0),
                     priority=rng.randrange(2))
    sim.run()
    assert not compare(sched)
    assert sched.load == 0.0
