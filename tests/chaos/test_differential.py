"""Differential testing: the incremental fluid engine vs the
brute-force oracle.

The engine (:mod:`repro.sim.fluid`) maintains rates incrementally with
dirty-flags, priority buckets, and cached aggregates.  The oracle
(:mod:`repro.chaos.oracle`) recomputes the whole rate vector from first
principles with a different algorithm.  Here we drive the engine through
randomized mutation sequences — submissions, cancellations, demand and
priority changes, capacity changes (including the dips to near-zero a
chaos NIC-degrade fault produces), detach/attach, and virtual-time
advances — and require exact agreement (to float tolerance) after every
single mutation.
"""

import random

import pytest

from repro.chaos import compare, max_min_rates, reference_rates
from repro.sim import FluidScheduler, Simulator


class TestOracleBasics:
    def test_max_min_unconstrained(self):
        assert max_min_rates([1.0, 1.0], 4.0) == [1.0, 1.0]

    def test_max_min_contended_equal_split(self):
        assert max_min_rates([5.0, 5.0], 4.0) == [2.0, 2.0]

    def test_max_min_small_demand_frozen_first(self):
        # 0.5 is frozen at its demand; the other two split the rest.
        assert max_min_rates([0.5, 5.0, 5.0], 4.0) == \
            pytest.approx([0.5, 1.75, 1.75])

    def test_max_min_zero_capacity(self):
        assert max_min_rates([1.0, 2.0], 0.0) == [0.0, 0.0]

    def test_max_min_empty(self):
        assert max_min_rates([], 4.0) == []

    def test_strict_priority_starves_lower_class(self):
        # Class 0 takes everything; class 1 gets nothing.
        rates = reference_rates([(3.0, 0), (2.0, 1)], 2.0)
        assert rates == [2.0, 0.0]

    def test_priority_leftover_flows_down(self):
        rates = reference_rates([(1.0, 0), (2.0, 1), (2.0, 1)], 4.0)
        assert rates == pytest.approx([1.0, 1.5, 1.5])


def mutate(rng, sim, sched, items):
    """Apply one random mutation; returns a short op label."""
    op = rng.randrange(8)
    live = [it for it in items if it.active]
    if op == 0 or not live:
        items.append(sched.submit(
            work=rng.uniform(0.05, 5.0),
            demand=rng.uniform(0.1, 4.0),
            priority=rng.randrange(3)))
        return "submit"
    if op == 1:
        sched.cancel(rng.choice(live))
        return "cancel"
    if op == 2:
        # Includes deep dips: a chaos fault can degrade a NIC to a
        # sliver of nominal, or machine failure zeroes core capacity.
        sched.set_capacity(rng.choice([0.001, 0.5, 1.0, 2.0, 4.0, 8.0]))
        return "capacity"
    if op == 3:
        sched.set_demand(rng.choice(live), rng.uniform(0.05, 4.0))
        return "demand"
    if op == 4:
        sched.set_priority(rng.choice(live), rng.randrange(3))
        return "priority"
    if op == 5:
        it = rng.choice(live)
        sched.detach(it)
        sched.attach(it)
        return "detach-attach"
    if op == 6:
        items.append(sched.hold(demand=rng.uniform(0.1, 2.0),
                                priority=rng.randrange(3)))
        return "hold"
    sim.run(until=sim.now + rng.uniform(0.001, 0.5))
    return "advance"


# 220 randomized mutation sequences, ~25 mutations each: every one of
# the ~5500 intermediate engine states must match the oracle exactly.
@pytest.mark.parametrize("seed", range(220))
def test_engine_matches_oracle_after_every_mutation(seed):
    rng = random.Random(seed)
    sim = Simulator()
    sched = FluidScheduler(sim, capacity=rng.choice([1.0, 2.0, 4.0]),
                           name=f"diff{seed}")
    items = []
    for step in range(25):
        label = mutate(rng, sim, sched, items)
        divergences = compare(sched)
        assert not divergences, (
            f"seed {seed} step {step} ({label}): {divergences}")


@pytest.mark.parametrize("seed", range(20))
def test_oracle_agreement_survives_drain(seed):
    """After the workload drains completely, engine and oracle agree on
    the empty state too (load exactly 0)."""
    rng = random.Random(seed)
    sim = Simulator()
    sched = FluidScheduler(sim, 2.0, name="drain")
    for _ in range(rng.randrange(1, 10)):
        sched.submit(work=rng.uniform(0.01, 0.5),
                     demand=rng.uniform(0.1, 2.0),
                     priority=rng.randrange(2))
    sim.run()
    assert not compare(sched)
    assert sched.load == 0.0
