"""Chaos invariant for the serving scenario: no tenant starves under
machine faults.

Mid-run, machines crash out from under serving replicas.  The serving
scheduler's next rounds must respawn the dead fleets through normal
placement (the crashed machines are ineligible), so by the end every
tenant that offered load still has live replicas and every in-flight
request is receiving CPU — :meth:`ServingScenario.check_no_starvation`
returns no violations.
"""

import pytest

from repro.apps import ServingScenario, default_tenants
from repro.units import MS


def _scenario(**kwargs):
    defaults = dict(machines=8, mode="fungible", seed=0,
                    duration=0.6, warmup=0.1, sched_interval=20 * MS)
    defaults.update(kwargs)
    return ServingScenario(default_tenants(4), **defaults)


def _inject(sc, fail_at, victims, restore_at=None):
    def chaos():
        yield sc.qs.sim.timeout(fail_at)
        for m in victims:
            sc.qs.runtime.fail_machine(m)
        if restore_at is not None:
            yield sc.qs.sim.timeout(restore_at - fail_at)
            for m in victims:
                sc.qs.runtime.restore_machine(m)
    sc.qs.sim.process(chaos(), name="chaos")


class TestStarvationInvariant:
    @pytest.mark.parametrize("n_victims", [1, 2])
    def test_no_tenant_starves_after_machine_crashes(self, n_victims):
        sc = _scenario()
        victims = sc.qs.machines[:n_victims]
        _inject(sc, fail_at=0.25, victims=victims)
        sc.run()
        assert sc.check_no_starvation() == []
        for t in sc.tenants:
            assert t.live_replicas(), \
                f"{t.spec.name} never recovered a replica"

    def test_replicas_respawn_off_the_dead_machines(self):
        sc = _scenario()
        victims = sc.qs.machines[:2]
        _inject(sc, fail_at=0.25, victims=victims)
        sc.run()
        down = set(victims)
        for t in sc.tenants:
            for _ref, p in t.live_replicas():
                assert p.machine not in down

    def test_service_continues_after_the_fault(self):
        sc = _scenario()
        _inject(sc, fail_at=0.3, victims=sc.qs.machines[:2])
        # Snapshot completions just after the fault, compare at the end.
        after_fault = {}

        def probe():
            yield sc.qs.sim.timeout(0.35)
            for t in sc.tenants:
                after_fault[t.spec.name] = t.completed
        sc.qs.sim.process(probe(), name="probe")
        sc.run()
        for t in sc.tenants:
            assert t.completed > after_fault[t.spec.name], \
                f"{t.spec.name} stopped completing requests post-fault"

    def test_restored_machine_rejoins_placement(self):
        sc = _scenario(duration=0.8)
        victim = sc.qs.machines[0]
        _inject(sc, fail_at=0.2, victims=[victim], restore_at=0.4)
        sc.run()
        assert victim.up
        assert sc.check_no_starvation() == []

    def test_lost_requests_are_counted_not_hung(self):
        sc = _scenario()
        _inject(sc, fail_at=0.3, victims=sc.qs.machines[:2])
        sc.run()
        failed = sum(t.failed for t in sc.tenants)
        assert failed > 0  # the crash really hit in-flight work
        for t in sc.tenants:
            # Nothing leaks: every admitted request resolved or is live.
            assert t.completed + t.failed + t.inflight == t.admitted
