"""Tests for the terminal-plot helpers and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.viz import histogram, sparkline, step_plot


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "███"

    def test_monotone_ramp(self):
        s = sparkline([0, 1, 2, 3])
        assert len(s) == 4
        assert s[0] == " " and s[-1] == "█"

    def test_explicit_bounds(self):
        s = sparkline([5.0], lo=0.0, hi=10.0)
        assert s in "▄▅"


class TestStepPlot:
    def test_empty(self):
        assert "empty" in step_plot([])

    def test_degenerate(self):
        assert "degenerate" in step_plot([(1.0, 2.0)])

    def test_shape(self):
        series = [(i * 0.001, float(i % 4)) for i in range(100)]
        out = step_plot(series, width=40, height=5, label="test")
        lines = out.splitlines()
        assert lines[0] == "test"
        assert len(lines) == 1 + 5 + 2  # label + rows + axis + footer
        assert "*" in out

    def test_square_wave_visible(self):
        series = []
        for i in range(200):
            series.append((i * 0.001, 8.0 if (i // 50) % 2 == 0 else 4.0))
        out = step_plot(series, width=60, height=6)
        top_row = out.splitlines()[0]
        # the top row must alternate: stars where value is 8
        assert "*" in top_row
        assert " " in top_row[10:]


class TestHistogram:
    def test_empty(self):
        assert "no samples" in histogram([])

    def test_single_value(self):
        assert "samples" in histogram([1.0, 1.0])

    def test_counts_sum(self):
        values = [0.1 * i for i in range(100)]
        out = histogram(values, bins=10)
        total = sum(int(line.rsplit(" ", 1)[-1])
                    for line in out.splitlines())
        assert total == 100


class TestCli:
    def test_parser_has_all_commands(self):
        parser = build_parser()
        for cmd in ("fig1", "fig2", "fig3", "ablations"):
            args = parser.parse_args([cmd] if cmd != "fig2"
                                     else ["fig2", "--images", "10"])
            assert args.command == cmd

    def test_fig1_runs(self, capsys):
        rc = main(["fig1", "--duration", "0.04"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "FIG1" in out
        assert "fungible" in out

    def test_fig3_runs(self, capsys):
        rc = main(["fig3", "--duration", "0.45"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "FIG3" in out

    def test_fig2_runs_tiny(self, capsys):
        rc = main(["fig2", "--images", "120"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "FIG2" in out
        assert "baseline" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
