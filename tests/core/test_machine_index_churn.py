"""Health-churn properties for the bucketed :class:`MachineIndex`.

The index answers placement queries from event-driven buckets and a
cached eligible list; the failure detector's ``ALIVE -> SUSPECTED ->
DEAD -> ALIVE`` transitions are among the events that must keep those
caches honest.  Under arbitrary interleavings of spawn / destroy /
machine crash / restore / detector heartbeats, every query must

* never surface a machine the health gate excludes (down, suspected,
  or confirmed dead but not yet re-probed after a restore), and
* agree *exactly* — same winner, same tie-break — with the brute-force
  scan over the live fleet that it replaced.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MachineSpec
from repro.cluster import Priority
from repro.ft import RecoveryConfig
from repro.units import GiB, MS

from ..conftest import make_qs

HEARTBEAT = 2 * MS
N_MACHINES = 6


def build_qs():
    machines = [MachineSpec(name=f"m{i}", cores=float(2 + 2 * (i % 3)),
                            dram_bytes=float((1 + i % 2) * GiB))
                for i in range(N_MACHINES)]
    qs = make_qs(machines=machines,
                 enable_local_scheduler=False,
                 enable_global_scheduler=False,
                 enable_split_merge=False)
    qs.enable_recovery(RecoveryConfig(heartbeat_interval=HEARTBEAT,
                                      suspect_after=2, confirm_after=4))
    return qs


# -- brute-force oracles (cluster order == ascending machine id) -----------
def brute_planned(qs, machine):
    total = 0.0
    for pid in qs.runtime.locator.proclets_on(machine):
        p = qs.runtime._proclets.get(pid)
        if p is not None:
            total += getattr(p, "parallelism", 0) or 0
    return total


def brute_ratio(qs, machine):
    cores = machine.cpu.cores
    return brute_planned(qs, machine) / cores if cores > 0 else 0.0


def brute_extremes(qs, value_of, healthy):
    """(least, val, most, val) with the index's tie-breaks: the minimum
    keeps the smallest machine id, the maximum the largest."""
    low = high = None
    low_v = high_v = 0.0
    for m in qs.machines:
        if not healthy(m):
            continue
        val = value_of(m)
        if low is None or val < low_v:
            low, low_v = m, val
        if high is None or val >= high_v:
            high, high_v = m, val
    return low, low_v, high, high_v


def brute_best_memory(qs, nbytes, healthy):
    best = None
    for m in qs.machines:
        if not healthy(m):
            continue
        free = m.memory.free
        if free < nbytes:
            continue
        if best is None or free > best.memory.free:
            best = m
    return best


def brute_best_compute(qs, healthy):
    best, best_free = None, 0.0
    for m in qs.machines:
        if not healthy(m):
            continue
        free = min(m.cpu.free_cores(Priority.NORMAL),
                   m.cpu.cores - brute_planned(qs, m))
        if free > best_free:
            best, best_free = m, free
    return best, best_free


def check_index_against_brute_force(qs):
    index = qs.machine_index
    health = qs.placement.health
    healthy = qs.placement._healthy

    got = index.eligible(health)
    want = [m for m in qs.machines if m.up and health(m)]
    assert got == want
    assert all(m.up and health(m) for m in got)

    low, low_p, high, high_p = index.pressure_extremes(healthy)
    blow, blow_p, bhigh, bhigh_p = brute_extremes(
        qs, lambda m: m.memory.pressure, healthy)
    assert (low, high) == (blow, bhigh)
    assert (low_p, high_p) == (blow_p, bhigh_p)

    low, low_r, high, high_r = index.cpu_ratio_extremes(healthy)
    blow, blow_r, bhigh, bhigh_r = brute_extremes(
        qs, lambda m: brute_ratio(qs, m), healthy)
    assert (low, high) == (blow, bhigh)
    assert (low_r, high_r) == (blow_r, bhigh_r)
    for m in (low, high):
        if m is not None:
            assert m.up and healthy(m)

    assert index.best_for_memory(64 * 1024, set(), healthy) \
        is brute_best_memory(qs, 64 * 1024, healthy)
    got_m, got_free = index.best_for_compute(Priority.NORMAL, set(),
                                             healthy)
    want_m, want_free = brute_best_compute(qs, healthy)
    assert got_m is want_m
    assert got_free == want_free

    for m in qs.machines:
        assert index.planned(m) == brute_planned(qs, m)


_ops = st.lists(
    st.one_of(
        st.tuples(st.just("spawn"), st.integers(1, 3)),
        st.tuples(st.just("spawn_mem"), st.just(0)),
        st.tuples(st.just("destroy"), st.integers(0, 1 << 20)),
        st.tuples(st.just("fail"), st.integers(0, N_MACHINES - 1)),
        st.tuples(st.just("restore"), st.integers(0, N_MACHINES - 1)),
        # 1..6 heartbeats: enough to cross suspect (2) and confirm (4)
        # thresholds in a single hop or split them across ops.
        st.tuples(st.just("ticks"), st.integers(1, 6)),
    ),
    min_size=1, max_size=25,
)


class TestChurnProperties:
    @given(_ops)
    @settings(max_examples=40, deadline=None)
    def test_queries_match_brute_force_under_health_churn(self, ops):
        qs = build_qs()
        refs = []
        for op in ops:
            kind, arg = op
            if kind == "spawn" and qs.eligible_machines():
                refs.append(qs.spawn_compute(parallelism=arg))
            elif kind == "spawn_mem" and qs.eligible_machines():
                refs.append(qs.spawn_memory())
            elif kind == "destroy" and refs:
                qs.runtime.destroy(refs.pop(arg % len(refs)))
            elif kind == "fail":
                qs.runtime.fail_machine(qs.machines[arg])
            elif kind == "restore":
                qs.runtime.restore_machine(qs.machines[arg])
            elif kind == "ticks":
                qs.run(until=qs.sim.now + arg * HEARTBEAT)
            check_index_against_brute_force(qs)

    @given(st.integers(0, N_MACHINES - 1), st.integers(0, 7))
    @settings(max_examples=30, deadline=None)
    def test_down_machine_never_surfaces_at_any_detector_stage(
            self, victim_idx, ticks):
        """At every point of the fail -> suspect -> confirm -> restore ->
        alive walk, a non-ALIVE machine is invisible to every query."""
        qs = build_qs()
        victim = qs.machines[victim_idx]
        detector = qs.recovery.detector
        qs.runtime.fail_machine(victim)
        qs.run(until=qs.sim.now + ticks * HEARTBEAT)
        check_index_against_brute_force(qs)
        assert victim not in qs.eligible_machines()
        qs.runtime.restore_machine(victim)
        # Up again, but the detector has not re-probed: while the state
        # is still SUSPECTED/DEAD the health gate must keep excluding it.
        if detector.is_suspected(victim):
            assert victim not in qs.eligible_machines()
        check_index_against_brute_force(qs)
        qs.run(until=qs.sim.now + 2 * HEARTBEAT)
        assert not detector.is_suspected(victim)
        assert victim in qs.eligible_machines()
        check_index_against_brute_force(qs)


class TestChurnRegression:
    def test_full_state_machine_walk(self):
        """Deterministic fail -> suspect -> dead -> revive walk with the
        index checked at each labelled stage."""
        qs = build_qs()
        detector = qs.recovery.detector
        for _ in range(4):
            qs.spawn_compute(parallelism=2)
        victim = qs.machines[2]
        check_index_against_brute_force(qs)

        qs.runtime.fail_machine(victim)          # down, not yet suspected
        check_index_against_brute_force(qs)
        qs.run(until=qs.sim.now + 2.5 * HEARTBEAT)   # -> SUSPECTED
        assert detector.is_suspected(victim)
        check_index_against_brute_force(qs)
        qs.run(until=qs.sim.now + 2 * HEARTBEAT)     # -> DEAD
        check_index_against_brute_force(qs)
        qs.runtime.restore_machine(victim)       # up, still DEAD state
        check_index_against_brute_force(qs)
        assert victim not in qs.eligible_machines()
        qs.run(until=qs.sim.now + 2 * HEARTBEAT)     # -> ALIVE
        assert victim in qs.eligible_machines()
        check_index_against_brute_force(qs)
