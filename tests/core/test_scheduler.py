"""Tests for the two-level scheduler: local reactions + global rebalance."""

import pytest

from repro import MachineSpec, Task
from repro.cluster import Priority
from repro.core.scheduler import AffinityTracker, PlacementPolicy
from repro.units import GiB, MS, MiB

from ..conftest import make_qs


class TestPlacementPolicy:
    def test_best_for_memory_excludes(self, qs_quiet):
        policy = qs_quiet.placement
        m0, m1 = qs_quiet.machines
        assert policy.best_for_memory(1 * MiB, exclude=(m0,)) is m1

    def test_best_for_memory_none_when_too_big(self, qs_quiet):
        assert qs_quiet.placement.best_for_memory(100 * GiB) is None

    def test_best_for_compute_prefers_idle(self, qs_quiet):
        m0, m1 = qs_quiet.machines
        m0.cpu.hold(threads=8.0, priority=Priority.HIGH)
        assert qs_quiet.placement.best_for_compute() is m1

    def test_best_for_compute_none_when_all_busy(self, qs_quiet):
        for m in qs_quiet.machines:
            m.cpu.hold(threads=m.cpu.cores, priority=Priority.HIGH)
        assert qs_quiet.placement.best_for_compute() is None

    def test_total_free_cores(self, qs_quiet):
        assert qs_quiet.placement.total_free_cores() == pytest.approx(16.0)


class TestLocalStarvationReaction:
    def test_starved_compute_proclet_migrates_quickly(self):
        """The Fig. 1 mechanism: a HIGH burst evicts NORMAL proclets."""
        qs = make_qs(enable_global_scheduler=False,
                     enable_split_merge=False)
        m0, m1 = qs.machines
        ref = qs.spawn_compute(parallelism=2, machine=m0)
        # keep it busy forever
        for _ in range(4):
            t = Task(work=100.0, done=qs.sim.event())
            ref.call("cp_submit", t)
        qs.sim.run(until=5 * MS)
        assert ref.machine is m0

        m0.cpu.hold(threads=8.0, priority=Priority.HIGH)
        burst_at = qs.sim.now
        qs.sim.run(until=burst_at + 5 * MS)
        assert ref.machine is m1, "proclet should flee the HIGH burst"
        lat = qs.metrics.samples("runtime.migration.latency")
        assert lat and lat[0] < 1 * MS

    def test_no_migration_without_starvation(self):
        qs = make_qs(enable_global_scheduler=False,
                     enable_split_merge=False)
        ref = qs.spawn_compute(machine=qs.machines[0])
        t = Task(work=0.05, done=qs.sim.event())
        ref.call("cp_submit", t)
        qs.sim.run(until=0.1)
        assert ref.proclet.migrations == 0

    def test_no_flight_when_everywhere_is_busy(self):
        qs = make_qs(enable_global_scheduler=False,
                     enable_split_merge=False)
        m0, m1 = qs.machines
        ref = qs.spawn_compute(machine=m0)
        t = Task(work=100.0, done=qs.sim.event())
        ref.call("cp_submit", t)
        qs.sim.run(until=2 * MS)
        m0.cpu.hold(threads=8.0, priority=Priority.HIGH)
        m1.cpu.hold(threads=8.0, priority=Priority.HIGH)
        qs.sim.run(until=20 * MS)
        assert ref.machine is m0  # nowhere better to go

    def test_migration_cooldown_limits_pingpong(self):
        qs = make_qs(enable_global_scheduler=False,
                     enable_split_merge=False)
        m0, m1 = qs.machines
        ref = qs.spawn_compute(machine=m0)
        t = Task(work=100.0, done=qs.sim.event())
        ref.call("cp_submit", t)
        qs.sim.run(until=2 * MS)
        # Starve both alternately very fast; cooldown should bound moves.
        h0 = m0.cpu.hold(threads=8.0, priority=Priority.HIGH)
        qs.sim.run(until=qs.sim.now + 2 * MS)
        h1 = m1.cpu.hold(threads=8.0, priority=Priority.HIGH)
        m0.cpu.release(h0)
        qs.sim.run(until=qs.sim.now + 0.5 * MS)
        m1.cpu.release(h1)
        qs.sim.run(until=qs.sim.now + 5 * MS)
        assert ref.proclet.migrations <= 3


class TestLocalMemoryPressure:
    def test_eviction_on_watermark(self):
        qs = make_qs(machines=[
            MachineSpec(name="small", cores=8, dram_bytes=1 * GiB),
            MachineSpec(name="big", cores=8, dram_bytes=8 * GiB),
        ], enable_global_scheduler=False, enable_split_merge=False)
        small = qs.machine("small")
        victim = qs.spawn_memory(machine=small, name="victim")
        qs.sim.run(
            until_event=victim.call("mp_put", 0, 200 * MiB, None))
        # Push the small machine over its watermark with foreign load.
        small.memory.reserve(small.memory.free - 30 * MiB)
        qs.sim.run(until=qs.sim.now + 20 * MS)
        assert victim.machine.name == "big"
        assert qs.local_schedulers[0].evictions_triggered >= 1

    def test_no_eviction_below_watermark(self):
        qs = make_qs(enable_global_scheduler=False,
                     enable_split_merge=False)
        ref = qs.spawn_memory(machine=qs.machines[0])
        qs.sim.run(until_event=ref.call("mp_put", 0, 100 * MiB, None))
        qs.sim.run(until=0.1)
        assert ref.proclet.migrations == 0


class TestGlobalScheduler:
    def test_cpu_rebalance_spreads_compute(self):
        qs = make_qs(enable_local_scheduler=False,
                     enable_split_merge=False,
                     global_interval=10 * MS)
        m0 = qs.machines[0]
        refs = [qs.spawn_compute(parallelism=4, machine=m0)
                for _ in range(4)]  # 16 demanded threads on 8 cores
        for ref in refs:
            for _ in range(8):
                ref.call("cp_submit", Task(work=50.0, done=qs.sim.event()))
        qs.sim.run(until=0.2)
        machines = {ref.machine.name for ref in refs}
        assert machines == {"m0", "m1"}, "global scheduler should spread"
        assert qs.global_scheduler.moves >= 1

    def test_memory_rebalance(self):
        qs = make_qs(enable_local_scheduler=False,
                     enable_split_merge=False,
                     global_interval=10 * MS)
        m0 = qs.machines[0]
        shards = [qs.spawn_memory(machine=m0) for _ in range(8)]
        for i, s in enumerate(shards):
            qs.sim.run(until_event=s.call("mp_put", 0, 300 * MiB, None))
        qs.sim.run(until=0.3)
        m1_shards = [s for s in shards if s.machine.name == "m1"]
        assert m1_shards, "memory should rebalance toward the idle machine"

    def test_no_moves_when_balanced(self):
        qs = make_qs(enable_local_scheduler=False,
                     enable_split_merge=False,
                     global_interval=10 * MS)
        a = qs.spawn_compute(machine=qs.machines[0])
        b = qs.spawn_compute(machine=qs.machines[1])
        a.call("cp_submit", Task(work=10.0, done=qs.sim.event()))
        b.call("cp_submit", Task(work=10.0, done=qs.sim.event()))
        qs.sim.run(until=0.2)
        assert qs.global_scheduler.moves == 0


class TestAffinity:
    def test_tracker_decay(self):
        from repro.sim import Simulator

        sim = Simulator()
        tracker = AffinityTracker(sim, half_life=0.1)
        tracker.record(1, 2, remote=True)
        assert tracker.weight(1, 2) == pytest.approx(1.0)
        sim.timeout(0.1)
        sim.run()
        assert tracker.weight(1, 2) == pytest.approx(0.5, rel=1e-6)

    def test_local_calls_not_tracked(self):
        from repro.sim import Simulator

        tracker = AffinityTracker(Simulator())
        tracker.record(1, 2, remote=False)
        assert tracker.weight(1, 2) == 0.0
        assert tracker.total_local_calls == 1

    def test_bad_half_life(self):
        from repro.sim import Simulator

        with pytest.raises(ValueError):
            AffinityTracker(Simulator(), half_life=0.0)

    def test_runtime_feeds_affinity(self, qs_quiet):
        qs = qs_quiet
        mem = qs.spawn_memory(machine=qs.machines[0])
        qs.sim.run(until_event=mem.call("mp_put", 0, 1024, "x"))

        from repro import Proclet

        class Chatty(Proclet):
            def chat(self, ctx, target, n):
                for _ in range(n):
                    yield ctx.call(target, "mp_get", 0)

        chatty = qs.spawn(Chatty(), qs.machines[1])
        qs.sim.run(until_event=chatty.call("chat", mem, 20))
        assert qs.affinity.weight(chatty.proclet_id,
                                  mem.proclet_id) > 5.0

    def test_affinity_colocation_by_global_scheduler(self):
        qs = make_qs(enable_local_scheduler=False,
                     enable_split_merge=False,
                     global_interval=20 * MS,
                     affinity_threshold=10.0)
        mem = qs.spawn_memory(machine=qs.machines[0])
        qs.sim.run(until_event=mem.call("mp_put", 0, 1024, "x"))

        from repro import Proclet

        class Chatty(Proclet):
            def chat(self, ctx, target, n):
                for _ in range(n):
                    yield ctx.call(target, "mp_get", 0)
                    yield ctx.sleep(0.0005)

        chatty = qs.spawn(Chatty(), qs.machines[1])
        chatty.call("chat", mem, 500)
        qs.sim.run(until=0.15)
        assert chatty.machine is mem.machine, \
            "chatty pair should be colocated"
