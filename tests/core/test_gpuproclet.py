"""Unit tests for GPU proclets."""

import pytest

from repro import ClusterSpec, GpuSpec, MachineSpec
from repro.core import Quicksand, QuicksandConfig
from repro.units import GiB, MS


@pytest.fixture
def qs():
    spec = ClusterSpec(machines=[
        MachineSpec(name="cpuonly", cores=8, dram_bytes=2 * GiB),
        MachineSpec(name="gpubox", cores=8, dram_bytes=2 * GiB,
                    gpus=GpuSpec(count=4, batch_time=10 * MS)),
    ])
    return Quicksand(spec, config=QuicksandConfig(
        enable_local_scheduler=False, enable_global_scheduler=False,
        enable_split_merge=False))


class TestGpuProclet:
    def test_train_occupies_one_gpu_for_batch_time(self, qs):
        ref = qs.spawn_gpu()
        t0 = qs.sim.now
        qs.run(until_event=ref.call("gp_train", "b0"))
        assert qs.sim.now - t0 >= 10 * MS
        assert ref.proclet.batches_trained == 1

    def test_parallel_batches_use_parallel_gpus(self, qs):
        ref = qs.spawn_gpu()
        events = [ref.call("gp_train", i) for i in range(4)]
        t0 = qs.sim.now
        qs.run(until_event=qs.sim.all_of(events))
        # 4 batches on 4 GPUs: one wave.
        assert qs.sim.now - t0 == pytest.approx(10 * MS, rel=0.1)

    def test_oversubscribed_batches_share(self, qs):
        ref = qs.spawn_gpu()
        events = [ref.call("gp_train", i) for i in range(8)]
        t0 = qs.sim.now
        qs.run(until_event=qs.sim.all_of(events))
        # 8 batches on 4 GPUs: two waves' worth of service.
        assert qs.sim.now - t0 == pytest.approx(20 * MS, rel=0.1)

    def test_service_rate_query(self, qs):
        ref = qs.spawn_gpu()
        rate = qs.run(until_event=ref.call("gp_service_rate"))
        assert rate == pytest.approx(400.0)

    def test_resize_changes_throughput(self, qs):
        ref = qs.spawn_gpu()
        gpus = qs.machine("gpubox").gpus
        gpus.resize(2)
        events = [ref.call("gp_train", i) for i in range(8)]
        t0 = qs.sim.now
        qs.run(until_event=qs.sim.all_of(events))
        assert qs.sim.now - t0 == pytest.approx(40 * MS, rel=0.1)

    def test_train_on_gpuless_machine_fails(self, qs):
        from repro.core.gpuproclet import GpuProclet

        ref = qs.runtime.spawn(GpuProclet(), qs.machine("cpuonly"))
        with pytest.raises(RuntimeError):
            qs.run(until_event=ref.call("gp_train"))
