"""Tests for adaptive split/merge controllers (§3.3)."""

import pytest

from repro import GpuSpec, MachineSpec, Proclet, Task
from repro.core.pressure import RateEstimator
from repro.core.splitmerge import ComputeAutoscaler
from repro.units import GiB, KiB, MS, MiB

from ..conftest import make_qs


class TestRateEstimator:
    def test_converges_to_constant_rate(self):
        est = RateEstimator(time_constant=0.01)
        t = 0.0
        for _ in range(100):
            t += 0.001
            est.update(t, 5.0)  # 5 events per ms = 5000/s
        assert est.rate == pytest.approx(5000.0, rel=0.01)

    def test_tracks_step_change_within_time_constant(self):
        est = RateEstimator(time_constant=0.004)
        t = 0.0
        for _ in range(50):
            t += 0.001
            est.update(t, 4.0)
        for _ in range(8):  # 8 ms after the step
            t += 0.001
            est.update(t, 8.0)
        assert est.rate > 6500.0  # mostly converged to 8000

    def test_validation(self):
        with pytest.raises(ValueError):
            RateEstimator(time_constant=0.0)

    def test_reset(self):
        est = RateEstimator(0.01, initial=5.0)
        assert est.rate == 5.0
        est.reset()
        assert est.rate == 0.0


class TestShardSizeController:
    def test_sizes_stay_in_band_during_ingest(self):
        qs = make_qs(max_shard_bytes=1 * MiB, min_shard_bytes=64 * KiB,
                     enable_local_scheduler=False,
                     enable_global_scheduler=False)
        m = qs.sharded_map()
        events = [m.put(f"k{i:04d}", None, 64 * KiB) for i in range(64)]
        qs.sim.run(until_event=qs.sim.all_of(events))
        qs.sim.run(until=qs.sim.now + 0.2)
        for shard in m.shards:
            assert shard.proclet.heap_bytes <= 1.05 * MiB

    def test_controller_keeps_migration_fast(self):
        """The whole point of §3.3: bounded shards migrate in bounded
        time, no matter how much data was ingested."""
        qs = make_qs(max_shard_bytes=4 * MiB, min_shard_bytes=256 * KiB,
                     enable_local_scheduler=False,
                     enable_global_scheduler=False)
        vec = qs.sharded_vector()
        events = [vec.append(None, 128 * KiB) for i in range(256)]  # 32 MiB
        qs.sim.run(until_event=qs.sim.all_of(events))
        qs.sim.run(until=qs.sim.now + 0.2)
        # migrate a middle shard and check latency
        shard = vec.shards[1]
        dst = next(m for m in qs.machines if m is not shard.ref.machine)
        latency = qs.sim.run(until_event=qs.runtime.migrate(shard.ref, dst))
        assert latency < 1 * MS

    def test_disabled_controller_lets_shards_grow(self):
        qs = make_qs(max_shard_bytes=1 * MiB, min_shard_bytes=64 * KiB,
                     enable_local_scheduler=False,
                     enable_global_scheduler=False,
                     enable_split_merge=False)
        vec = qs.sharded_vector()
        events = [vec.append(None, 64 * KiB) for i in range(64)]
        qs.sim.run(until_event=qs.sim.all_of(events))
        qs.sim.run(until=qs.sim.now + 0.2)
        assert vec.shard_count == 1
        assert vec.shards[0].proclet.heap_bytes == 4 * MiB


class _SteadyConsumer(Proclet):
    """Pops from a queue at whatever rate the queue sustains."""

    def __init__(self):
        super().__init__()
        self.consumed = 0

    def consume(self, ctx, queue, rate_limit=None):
        while True:
            yield queue.pop(ctx)
            self.consumed += 1
            if rate_limit is not None:
                yield ctx.sleep(1.0 / rate_limit)


class TestComputeAutoscaler:
    def _pipeline(self, consumption_rate, duration=0.3):
        """A pool producing into a queue drained at consumption_rate."""
        qs = make_qs(machines=[
            MachineSpec(name="m0", cores=16, dram_bytes=4 * GiB),
            MachineSpec(name="m1", cores=16, dram_bytes=4 * GiB),
        ], enable_local_scheduler=False, enable_global_scheduler=False)
        q = qs.sharded_queue(name="pipe")
        task_cpu = 0.01  # one member produces 100 tasks/s

        class Source:
            def pull(self, ctx):
                yield ctx.cpu(1e-6)
                t = Task(work=0.0)

                def fn(c, _t):
                    yield c.cpu(task_cpu)
                    yield q.push("batch", 16 * KiB, ctx=c)

                t.fn = fn
                return t

        pool = qs.compute_pool(name="prod", parallelism=1, source=Source())
        scaler = ComputeAutoscaler(qs, pool, q,
                                   nominal_task_rate=1.0 / task_cpu,
                                   min_members=1, max_members=16)
        consumer = qs.spawn(_SteadyConsumer(), qs.machines[0])
        consumer.call("consume", q, rate_limit=consumption_rate)
        qs.sim.run(until=duration)
        return qs, pool, scaler

    def test_scales_up_to_match_consumer(self):
        qs, pool, scaler = self._pipeline(consumption_rate=400.0)
        # 400 tasks/s needs ~4 members at 100 tasks/s each
        assert 3 <= pool.size <= 6
        assert scaler.scale_ups >= 2

    def test_stays_small_for_slow_consumer(self):
        qs, pool, scaler = self._pipeline(consumption_rate=80.0)
        assert pool.size <= 2

    def test_validation(self, qs_quiet):
        pool = qs_quiet.compute_pool()
        q = qs_quiet.sharded_queue()
        with pytest.raises(ValueError):
            ComputeAutoscaler(qs_quiet, pool, q, nominal_task_rate=0.0)

    def test_decisions_trace_recorded(self):
        qs, pool, scaler = self._pipeline(consumption_rate=200.0,
                                          duration=0.1)
        assert len(scaler.decisions) > 50  # ~1 per ms
        times = [t for t, _d, _a in scaler.decisions]
        assert times == sorted(times)
