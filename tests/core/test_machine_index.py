"""MachineIndex: bucketed placement queries must equal linear scans.

The index trades linear scans for log2 buckets and event-driven caches;
every query here is cross-checked against the brute-force scan it
replaces — same winner, same smallest-id tie-break.
"""

import pytest

from repro.core.scheduler.machine_index import MachineIndex, _bucket_key

from ..conftest import make_qs
from repro import MachineSpec
from repro.units import GiB


def _fleet(n=8):
    return [MachineSpec(name=f"m{i}", cores=float(4 << (i % 3)),
                        dram_bytes=float((1 << (i % 3)) * GiB))
            for i in range(n)]


@pytest.fixture
def qs():
    return make_qs(machines=_fleet(),
                   enable_local_scheduler=False,
                   enable_global_scheduler=False,
                   enable_split_merge=False)


def _brute_best_memory(machines, nbytes, healthy):
    best = None
    for m in machines:  # cluster order: first-wins == smallest id
        if not healthy(m):
            continue
        free = m.memory.free
        if free < nbytes:
            continue
        if best is None or free > best.memory.free:
            best = m
    return best


def _brute_planned(qs, machine):
    total = 0.0
    for pid in qs.runtime.locator.proclets_on(machine):
        p = qs.runtime._proclets.get(pid)
        if p is not None:
            total += getattr(p, "parallelism", 0) or 0
    return total


class TestBucketKey:
    def test_ranges_are_disjoint_and_exact(self):
        for e in range(-4, 40):
            lo, hi = 2.0 ** (e - 1), 2.0 ** e
            assert _bucket_key(lo) == e
            assert _bucket_key(hi * 0.999999) == e

    def test_nonpositive_values_sink_below_everything(self):
        assert _bucket_key(0.0) < _bucket_key(1e-30)
        assert _bucket_key(-5.0) == _bucket_key(0.0)


class TestMemoryQueries:
    def test_matches_linear_scan_under_churn(self, qs):
        index = qs.machine_index
        healthy = lambda m: m.up
        refs = []
        for i in range(12):
            refs.append(qs.spawn_memory())
            qs.run(until=qs.sim.now + 1e-4)
            want = _brute_best_memory(qs.machines, 64 * 1024, healthy)
            got = index.best_for_memory(64 * 1024, set(), healthy)
            assert got is want
        for ref in refs[::2]:
            qs.runtime.destroy(ref)
        qs.run(until=qs.sim.now + 1e-3)
        want = _brute_best_memory(qs.machines, 64 * 1024, healthy)
        assert index.best_for_memory(64 * 1024, set(), healthy) is want

    def test_skip_and_health_filters_apply(self, qs):
        index = qs.machine_index
        healthy = lambda m: m.up
        all_m = qs.machines
        first = index.best_for_memory(1, set(), healthy)
        second = index.best_for_memory(1, {first}, healthy)
        assert second is not first
        # Brute force with the same skip agrees.
        want = _brute_best_memory([m for m in all_m if m is not first],
                                  1, healthy)
        assert second is want

    def test_failed_machine_is_not_offered(self, qs):
        index = qs.machine_index
        healthy = lambda m: m.up
        victim = index.best_for_memory(1, set(), healthy)
        qs.runtime.fail_machine(victim)
        assert index.best_for_memory(1, set(), healthy) is not victim


class TestPlannedDemand:
    def test_tracks_spawn_and_destroy_exactly(self, qs):
        index = qs.machine_index
        refs = [qs.spawn_compute(parallelism=2) for _ in range(6)]
        qs.run(until=qs.sim.now + 1e-3)
        for m in qs.machines:
            assert index.planned(m) == _brute_planned(qs, m)
        for ref in refs[:3]:
            qs.runtime.destroy(ref)
        qs.run(until=qs.sim.now + 1e-3)
        for m in qs.machines:
            assert index.planned(m) == _brute_planned(qs, m)


class TestEligibleCache:
    def test_cache_invalidated_by_failure_and_restore(self, qs):
        n = len(qs.machines)
        assert len(qs.eligible_machines()) == n
        victim = qs.machines[0]
        qs.runtime.fail_machine(victim)
        assert victim not in qs.eligible_machines()
        qs.runtime.restore_machine(victim)
        assert len(qs.eligible_machines()) == n

    def test_untracked_health_bypasses_cache(self, qs):
        index = qs.machine_index
        banned = qs.machines[0]
        ad_hoc = lambda m: m is not banned
        got = index.eligible(ad_hoc)
        assert banned not in got
        assert len(got) == len(qs.machines) - 1
