"""Unit tests for the prefetching reader."""

import pytest

from repro import Proclet
from repro.core.prefetch import PrefetchingReader
from repro.units import KiB, MiB, US

from ..conftest import make_qs


@pytest.fixture
def qs():
    return make_qs(enable_local_scheduler=False,
                   enable_global_scheduler=False,
                   enable_split_merge=False)


class Scanner(Proclet):
    def __init__(self):
        super().__init__()
        self.seen = []

    def scan(self, ctx, reader, cpu_per_batch=0.0):
        while True:
            batch = yield from reader.next_batch(ctx)
            if batch is None:
                return len(self.seen)
            self.seen.extend(k for k, _v in batch)
            if cpu_per_batch:
                yield ctx.cpu(cpu_per_batch)


def _vector(qs, n, size=64 * KiB):
    vec = qs.sharded_vector(name="v")
    events = [vec.append(f"v{i}", size) for i in range(n)]
    qs.sim.run(until_event=qs.sim.all_of(events))
    return vec


class TestReaderMechanics:
    def test_reads_all_in_order(self, qs):
        vec = _vector(qs, 50)
        scanner = qs.spawn(Scanner(), qs.machines[0])
        reader = vec.reader(0, 50, chunk=7, depth=3)
        total = qs.sim.run(until_event=scanner.call("scan", reader))
        assert total == 50
        assert scanner.proclet.seen == list(range(50))
        assert reader.exhausted

    def test_depth_zero_still_works(self, qs):
        vec = _vector(qs, 20)
        scanner = qs.spawn(Scanner(), qs.machines[0])
        reader = vec.reader(0, 20, chunk=4, depth=0)
        qs.sim.run(until_event=scanner.call("scan", reader))
        assert scanner.proclet.seen == list(range(20))

    def test_chunk_one(self, qs):
        vec = _vector(qs, 10)
        scanner = qs.spawn(Scanner(), qs.machines[0])
        reader = vec.reader(0, 10, chunk=1, depth=2)
        qs.sim.run(until_event=scanner.call("scan", reader))
        assert scanner.proclet.seen == list(range(10))
        assert reader.batches_read == 10

    def test_validation(self, qs):
        vec = _vector(qs, 4)
        with pytest.raises(ValueError):
            PrefetchingReader(vec, 0, 4, chunk=0)
        with pytest.raises(ValueError):
            PrefetchingReader(vec, 0, 4, depth=-1)

    def test_empty_range(self, qs):
        vec = _vector(qs, 4)
        scanner = qs.spawn(Scanner(), qs.machines[0])
        reader = vec.reader(2, 2)
        total = qs.sim.run(until_event=scanner.call("scan", reader))
        assert total == 0

    def test_batches_clamped_at_shard_boundaries(self, qs):
        """A batch read never spans two shards."""
        qs2 = make_qs(max_shard_bytes=512 * KiB, min_shard_bytes=64 * KiB,
                      enable_local_scheduler=False,
                      enable_global_scheduler=False)
        vec = _vector(qs2, 40, size=64 * KiB)  # forces several shards
        qs2.sim.run(until=qs2.sim.now + 0.1)
        assert vec.shard_count > 1
        scanner = qs2.spawn(Scanner(), qs2.machines[0])
        reader = vec.reader(0, 40, chunk=16, depth=2)
        qs2.sim.run(until_event=scanner.call("scan", reader))
        assert scanner.proclet.seen == list(range(40))


class TestOverlapBehaviour:
    def test_prefetch_hides_remote_fetch_time(self, qs):
        """With compute per batch >> fetch time, scan time with depth>0
        approaches pure compute; with depth=0+chunk=1 it pays the RPC
        per element."""
        m0, m1 = qs.machines
        vec = qs.sharded_vector(name="far", initial_machine=m1)
        events = [vec.append(None, 256 * KiB) for _ in range(64)]
        qs.sim.run(until_event=qs.sim.all_of(events))

        def scan_time(chunk, depth):
            scanner = qs.spawn(Scanner(), m0)
            reader = vec.reader(0, 64, chunk=chunk, depth=depth)
            t0 = qs.sim.now
            qs.sim.run(until_event=scanner.call(
                "scan", reader, 50 * US * chunk / chunk))
            return qs.sim.now - t0

        pipelined = scan_time(chunk=8, depth=4)
        synchronous = scan_time(chunk=1, depth=0)
        assert synchronous > 1.2 * pipelined

    def test_reader_counts(self, qs):
        vec = _vector(qs, 30)
        scanner = qs.spawn(Scanner(), qs.machines[0])
        reader = vec.reader(0, 30, chunk=10, depth=2)
        qs.sim.run(until_event=scanner.call("scan", reader))
        assert reader.batches_read == 3
        assert reader.elements_read == 30
