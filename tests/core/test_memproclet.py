"""Unit tests for memory proclets and distributed pointers."""

import pytest

from repro import MemoryProclet, Proclet
from repro.core.memproclet import DistPtr
from repro.units import KiB, MiB

from ..conftest import make_qs


@pytest.fixture
def qs():
    return make_qs(enable_local_scheduler=False,
                   enable_global_scheduler=False,
                   enable_split_merge=False)


def run(qs, ev):
    return qs.sim.run(until_event=ev)


class TestObjectStore:
    def test_put_get_roundtrip(self, qs):
        ref = qs.spawn_memory(name="mp")
        run(qs, ref.call("mp_put", 1, 100 * KiB, "image-1"))
        value = run(qs, ref.call("mp_get", 1))
        assert value == "image-1"
        assert ref.proclet.heap_bytes == 100 * KiB

    def test_overwrite_adjusts_heap(self, qs):
        ref = qs.spawn_memory()
        run(qs, ref.call("mp_put", "k", 10 * KiB, "a"))
        run(qs, ref.call("mp_put", "k", 30 * KiB, "b"))
        assert ref.proclet.heap_bytes == 30 * KiB
        assert ref.proclet.object_count == 1

    def test_get_missing_key_fails(self, qs):
        ref = qs.spawn_memory()
        with pytest.raises(KeyError):
            run(qs, ref.call("mp_get", "nope"))

    def test_delete_frees_heap(self, qs):
        ref = qs.spawn_memory()
        run(qs, ref.call("mp_put", 5, 1 * MiB, None))
        freed = run(qs, ref.call("mp_delete", 5))
        assert freed == 1 * MiB
        assert ref.proclet.heap_bytes == 0
        assert ref.proclet.object_count == 0

    def test_delete_missing_fails(self, qs):
        ref = qs.spawn_memory()
        with pytest.raises(KeyError):
            run(qs, ref.call("mp_delete", "nope"))

    def test_contains(self, qs):
        ref = qs.spawn_memory()
        run(qs, ref.call("mp_put", 1, 10, None))
        assert run(qs, ref.call("mp_contains", 1)) is True
        assert run(qs, ref.call("mp_contains", 2)) is False

    def test_keys_stay_sorted(self, qs):
        ref = qs.spawn_memory()
        for k in [5, 1, 3, 2, 4]:
            run(qs, ref.call("mp_put", k, 10, None))
        assert ref.proclet.keys == [1, 2, 3, 4, 5]
        assert ref.proclet.key_range() == (1, 5)

    def test_get_range_batches(self, qs):
        ref = qs.spawn_memory()
        for k in range(10):
            run(qs, ref.call("mp_put", k, 1 * KiB, f"v{k}"))
        batch = run(qs, ref.call("mp_get_range", 3, 7))
        assert batch == [(3, "v3"), (4, "v4"), (5, "v5"), (6, "v6")]

    def test_get_range_remote_pays_bulk_not_per_object(self, qs):
        m0, m1 = qs.machines
        ref = qs.spawn_memory(machine=m1)
        for k in range(64):
            run(qs, ref.call("mp_put", k, 200 * KiB, None))
        t0 = qs.sim.now
        run(qs, ref.call("mp_get_range", 0, 64, caller_machine=m0))
        batch_time = qs.sim.now - t0
        # One RPC + one bulk transfer of 12.8 MB: ~1.1ms, far less than
        # 64 individual RPCs (>0.64ms fixed overhead alone + transfers).
        expected_bulk = 64 * 200 * KiB / m1.nic.bandwidth
        assert batch_time < 2.5 * expected_bulk

    def test_stats(self, qs):
        ref = qs.spawn_memory()
        run(qs, ref.call("mp_put", 1, 512, None))
        stats = run(qs, ref.call("mp_stats"))
        assert stats["objects"] == 1
        assert stats["heap_bytes"] == 512


class TestSplitPrimitives:
    def _filled(self, qs, n=10, size=1 * MiB):
        ref = qs.spawn_memory()
        for k in range(n):
            run(qs, ref.call("mp_put", k, size, f"v{k}"))
        return ref

    def test_split_point_balances_bytes(self, qs):
        ref = self._filled(qs)
        split = ref.proclet.split_point()
        assert 3 <= split <= 7

    def test_split_point_needs_two_objects(self, qs):
        ref = qs.spawn_memory()
        run(qs, ref.call("mp_put", 1, 10, None))
        with pytest.raises(ValueError):
            ref.proclet.split_point()

    def test_extract_upper_and_install(self, qs):
        ref = self._filled(qs, n=10)
        p = ref.proclet
        items, nbytes = p.extract_upper(5)
        assert [k for k, _n, _v in items] == [5, 6, 7, 8, 9]
        assert nbytes == 5 * MiB
        assert p.object_count == 5
        assert p.heap_bytes == 5 * MiB

        other = qs.spawn_memory()
        other.proclet.install(items)
        assert other.proclet.object_count == 5
        assert other.proclet.heap_bytes == 5 * MiB

    def test_install_duplicate_key_rejected(self, qs):
        ref = self._filled(qs, n=3)
        with pytest.raises(ValueError):
            ref.proclet.install([(1, 10.0, None)])

    def test_extract_all(self, qs):
        ref = self._filled(qs, n=4)
        items, nbytes = ref.proclet.extract_all()
        assert len(items) == 4
        assert nbytes == 4 * MiB
        assert ref.proclet.object_count == 0
        assert ref.proclet.heap_bytes == 0

    def test_empty_key_range_raises(self, qs):
        ref = qs.spawn_memory()
        with pytest.raises(ValueError):
            ref.proclet.key_range()


class TestDistPtr:
    def test_deref_through_worker(self, qs):
        m0 = qs.machines[0]
        mem = qs.spawn_memory(machine=m0)
        run(qs, mem.call("mp_put", "obj", 64 * KiB, "payload"))
        ptr = DistPtr(shard=mem, key="obj")

        class Reader(Proclet):
            def __init__(self):
                super().__init__()
                self.seen = None

            def read(self, ctx, p):
                self.seen = yield p.deref(ctx)

        reader = qs.spawn(Reader(), qs.machines[1])
        run(qs, reader.call("read", ptr))
        assert reader.proclet.seen == "payload"

    def test_store_through_ptr(self, qs):
        mem = qs.spawn_memory()
        run(qs, mem.call("mp_put", "obj", 10, "old"))
        ptr = DistPtr(shard=mem, key="obj")

        class Writer(Proclet):
            def write(self, ctx, p):
                yield p.store(ctx, "new", 20)

        w = qs.spawn(Writer(), qs.machines[0])
        run(qs, w.call("write", ptr))
        assert run(qs, mem.call("mp_get", "obj")) == "new"
