"""Tests for the Quicksand facade: placement, split/merge primitives."""

import pytest

from repro import (
    ClusterSpec,
    MachineSpec,
    ProcletStatus,
    Quicksand,
    QuicksandConfig,
    Task,
)
from repro.runtime.errors import InvalidPlacement
from repro.units import GiB, KiB, MiB

from ..conftest import gpu_machine, make_qs, storage_machine


@pytest.fixture
def qs():
    return make_qs(enable_local_scheduler=False,
                   enable_global_scheduler=False,
                   enable_split_merge=False)


class TestPlacement:
    def test_memory_proclet_goes_to_most_free_dram(self):
        qs = make_qs(machines=[
            MachineSpec(name="small", cores=8, dram_bytes=1 * GiB),
            MachineSpec(name="big", cores=8, dram_bytes=8 * GiB),
        ], enable_local_scheduler=False, enable_global_scheduler=False,
            enable_split_merge=False)
        ref = qs.spawn_memory()
        assert ref.machine.name == "big"

    def test_compute_proclet_goes_to_most_free_cpu(self):
        qs = make_qs(machines=[
            MachineSpec(name="weak", cores=2, dram_bytes=4 * GiB),
            MachineSpec(name="beefy", cores=40, dram_bytes=4 * GiB),
        ], enable_local_scheduler=False, enable_global_scheduler=False,
            enable_split_merge=False)
        ref = qs.spawn_compute()
        assert ref.machine.name == "beefy"

    def test_compute_fallback_when_all_busy(self, qs):
        from repro.cluster import Priority

        for m in qs.machines:
            m.cpu.hold(threads=m.cpu.cores, priority=Priority.HIGH)
        ref = qs.spawn_compute()  # falls back to least-loaded
        assert ref.machine in qs.machines

    def test_gpu_proclet_requires_gpus(self, qs):
        with pytest.raises(InvalidPlacement):
            qs.spawn_gpu()

    def test_gpu_proclet_goes_to_gpu_machine(self):
        qs = make_qs(machines=[
            MachineSpec(name="cpuonly", cores=8, dram_bytes=4 * GiB),
            gpu_machine(name="gpubox"),
        ], enable_local_scheduler=False, enable_global_scheduler=False,
            enable_split_merge=False)
        ref = qs.spawn_gpu()
        assert ref.machine.name == "gpubox"

    def test_storage_proclet_requires_device(self, qs):
        with pytest.raises(InvalidPlacement):
            qs.spawn_storage()

    def test_explicit_machine_overrides_policy(self, qs):
        m0 = qs.machines[0]
        ref = qs.spawn_memory(machine=m0)
        assert ref.machine is m0


class TestSplitMemory:
    def _filled_shard(self, qs, n=16, size=1 * MiB, machine=None):
        ref = qs.spawn_memory(machine=machine)
        for k in range(n):
            qs.sim.run(until_event=ref.call("mp_put", k, size, f"v{k}"))
        return ref

    def test_split_halves_bytes(self, qs):
        ref = self._filled_shard(qs, n=16)
        result = qs.sim.run(until_event=qs.split_memory(ref))
        split_key, new_ref = result
        assert ref.proclet.heap_bytes == pytest.approx(8 * MiB)
        assert new_ref.proclet.heap_bytes == pytest.approx(8 * MiB)
        assert split_key == 8
        assert qs.splits == 1

    def test_split_preserves_all_objects(self, qs):
        ref = self._filled_shard(qs, n=10)
        _key, new_ref = qs.sim.run(until_event=qs.split_memory(ref))
        total = ref.proclet.object_count + new_ref.proclet.object_count
        assert total == 10
        # and every key readable from the right shard
        for k in range(10):
            target = new_ref if k >= _key else ref
            v = qs.sim.run(until_event=target.call("mp_get", k))
            assert v == f"v{k}"

    def test_split_blocks_invocations_until_done(self, qs):
        ref = self._filled_shard(qs, n=64, size=1 * MiB,
                                 machine=qs.machines[0])
        # Force the new half to the other machine so the transfer is slow
        # enough to observe the gate.
        split_ev = qs.split_memory(ref, dst=qs.machines[1])
        qs.sim.run(until=qs.sim.now + 150e-6)  # inside the split window
        assert ref.proclet.status is ProcletStatus.MIGRATING
        read = ref.call("mp_get", 0)
        assert not read.triggered
        qs.sim.run(until_event=split_ev)
        qs.sim.run(until_event=read)  # unblocked after split

    def test_split_too_small_returns_none(self, qs):
        ref = qs.spawn_memory()
        qs.sim.run(until_event=ref.call("mp_put", 1, 10, None))
        assert qs.sim.run(until_event=qs.split_memory(ref)) is None

    def test_split_in_place_when_cluster_is_tight(self):
        """With one nearly-full machine the split still succeeds locally:
        re-granularization does not need new DRAM for the data itself."""
        qs = make_qs(machines=[
            MachineSpec(name="only", cores=4, dram_bytes=1 * GiB),
        ], enable_local_scheduler=False, enable_global_scheduler=False,
            enable_split_merge=False)
        ref = qs.spawn_memory()
        for k in range(8):
            qs.sim.run(until_event=ref.call("mp_put", k, 64 * MiB, None))
        m = qs.machines[0]
        m.memory.reserve(m.memory.free - 1 * MiB)
        split_key, new_ref = qs.sim.run(until_event=qs.split_memory(ref))
        assert new_ref.machine is m
        assert ref.proclet.object_count + new_ref.proclet.object_count == 8

    def test_split_to_full_destination_undoes(self, qs):
        ref = self._filled_shard(qs, n=8, machine=qs.machines[0])
        m1 = qs.machines[1]
        m1.memory.reserve(m1.memory.free - 1 * KiB)
        result = qs.sim.run(until_event=qs.split_memory(ref, dst=m1))
        assert result is None
        assert ref.proclet.object_count == 8
        assert ref.proclet.status is ProcletStatus.RUNNING


class TestMergeMemory:
    def test_merge_moves_objects_and_destroys_source(self, qs):
        a = qs.spawn_memory(machine=qs.machines[0])
        b = qs.spawn_memory(machine=qs.machines[1])
        for k in range(4):
            qs.sim.run(until_event=a.call("mp_put", k, 100 * KiB, k))
        for k in range(4, 8):
            qs.sim.run(until_event=b.call("mp_put", k, 100 * KiB, k))
        ok = qs.sim.run(until_event=qs.merge_memory(a, b))
        assert ok is True
        assert a.proclet.object_count == 8
        assert qs.merges == 1
        from repro.runtime import DeadProclet

        with pytest.raises(DeadProclet):
            qs.sim.run(until_event=b.call("mp_get", 4))

    def test_merge_declined_when_destination_full(self, qs):
        a = qs.spawn_memory(machine=qs.machines[0])
        b = qs.spawn_memory(machine=qs.machines[1])
        qs.sim.run(until_event=b.call("mp_put", 0, 100 * MiB, None))
        m0 = qs.machines[0]
        m0.memory.reserve(m0.memory.free - 1 * MiB)
        result = qs.sim.run(until_event=qs.merge_memory(a, b))
        assert result is None
        assert b.proclet.object_count == 1


class TestSplitCompute:
    def test_split_divides_queue(self, qs):
        ref = qs.spawn_compute(parallelism=1, machine=qs.machines[0])
        events = []
        for i in range(9):
            t = Task(work=0.05, key=i, done=qs.sim.event())
            ref.call("cp_submit", t)
            events.append(t.done)
        qs.sim.run(until=0.01)
        new_ref = qs.sim.run(until_event=qs.split_compute(ref))
        assert new_ref is not None
        assert new_ref.proclet.queue_length + ref.proclet.queue_length \
            + ref.proclet.busy_workers + new_ref.proclet.busy_workers == 9 - ref.proclet.tasks_done
        # all tasks still complete exactly once
        qs.sim.run(until_event=qs.sim.all_of(events))
        assert ref.proclet.tasks_done + new_ref.proclet.tasks_done == 9

    def test_split_finishes_faster_than_serial(self, qs):
        ref = qs.spawn_compute(parallelism=1, machine=qs.machines[0])
        events = []
        for i in range(8):
            t = Task(work=0.1, key=i, done=qs.sim.event())
            ref.call("cp_submit", t)
            events.append(t.done)
        qs.sim.run(until=0.01)
        qs.sim.run(until_event=qs.split_compute(ref))
        qs.sim.run(until_event=qs.sim.all_of(events))
        assert qs.sim.now < 0.55  # serial would be 0.8s

    def test_split_denied_without_cpu_headroom(self, qs):
        from repro.cluster import Priority

        for m in qs.machines:
            m.cpu.hold(threads=m.cpu.cores, priority=Priority.HIGH)
        ref = qs.spawn_compute()
        result = qs.sim.run(until_event=qs.split_compute(ref))
        assert result is None


class TestMergeCompute:
    def test_merge_transfers_queue_and_destroys(self, qs):
        a = qs.spawn_compute(parallelism=1, machine=qs.machines[0])
        b = qs.spawn_compute(parallelism=1, machine=qs.machines[1])
        events = []
        for i in range(6):
            t = Task(work=0.02, key=i, done=qs.sim.event())
            b.call("cp_submit", t)
            events.append(t.done)
        qs.sim.run(until=0.005)
        ok = qs.sim.run(until_event=qs.merge_compute(a, b))
        assert ok is True
        qs.sim.run(until_event=qs.sim.all_of(events))
        assert a.proclet.tasks_done + 1 >= 6 - 1  # b finished its in-flight


class TestFacadeMisc:
    def test_repr(self, qs):
        assert "Quicksand" in repr(qs)

    def test_machine_lookup(self, qs):
        assert qs.machine("m0") is qs.machines[0]

    def test_storage_machines_listed(self):
        qs = make_qs(machines=[storage_machine()],
                     enable_local_scheduler=False,
                     enable_global_scheduler=False,
                     enable_split_merge=False)
        assert len(qs.placement.storage_machines()) == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            QuicksandConfig(max_shard_bytes=1.0, min_shard_bytes=2.0)
        with pytest.raises(ValueError):
            QuicksandConfig(memory_watermark=0.0)
        with pytest.raises(ValueError):
            QuicksandConfig(autoscale_period=0.0)
