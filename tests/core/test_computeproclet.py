"""Unit tests for compute proclets: task execution, queue division, stop."""

import pytest

from repro import Task
from repro.cluster import Priority
from repro.core.computeproclet import ComputeProclet

from ..conftest import make_qs


@pytest.fixture
def qs():
    return make_qs(enable_local_scheduler=False,
                   enable_global_scheduler=False,
                   enable_split_merge=False)


def submit(qs, ref, task):
    if task.done is None:
        task.done = qs.sim.event()
    ref.call("cp_submit", task)
    return task.done


class TestBasics:
    def test_plain_cpu_task_completes(self, qs):
        ref = qs.spawn_compute()
        done = submit(qs, ref, Task(work=0.01))
        qs.sim.run(until_event=done)
        assert qs.sim.now >= 0.01
        assert ref.proclet.tasks_done == 1

    def test_parallelism_validation(self):
        with pytest.raises(ValueError):
            ComputeProclet(parallelism=0)

    def test_negative_task_work_rejected(self):
        with pytest.raises(ValueError):
            Task(work=-1.0)

    def test_fn_task_receives_ctx(self, qs):
        ref = qs.spawn_compute()
        seen = {}

        def fn(ctx, task):
            yield ctx.cpu(0.001)
            seen["machine"] = ctx.machine.name
            return 42

        done = submit(qs, ref, Task(fn=fn))
        result = qs.sim.run(until_event=done)
        assert result == 42
        assert seen["machine"] == ref.machine.name

    def test_tasks_run_concurrently_with_parallelism(self, qs):
        ref = qs.spawn_compute(parallelism=4)
        events = [submit(qs, ref, Task(work=0.1)) for _ in range(4)]
        qs.sim.run(until_event=qs.sim.all_of(events))
        # 4 tasks x 0.1s on 4 workers on an 8-core machine: ~0.1s total.
        assert qs.sim.now == pytest.approx(0.1, rel=0.05)

    def test_single_worker_serializes(self, qs):
        ref = qs.spawn_compute(parallelism=1)
        events = [submit(qs, ref, Task(work=0.1)) for _ in range(4)]
        qs.sim.run(until_event=qs.sim.all_of(events))
        assert qs.sim.now == pytest.approx(0.4, rel=0.05)

    def test_queue_length_visible(self, qs):
        ref = qs.spawn_compute(parallelism=1)
        for _ in range(5):
            submit(qs, ref, Task(work=1.0))
        qs.sim.run(until=0.01)
        # one executing, four queued
        assert ref.proclet.queue_length == 4
        assert ref.proclet.busy_workers == 1

    def test_on_task_done_callback(self, qs):
        ref = qs.spawn_compute()
        calls = []
        ref.proclet.on_task_done = lambda p, t, r: calls.append(t.key)
        done = submit(qs, ref, Task(work=0.001, key="t1"))
        qs.sim.run(until_event=done)
        assert calls == ["t1"]

    def test_submit_many(self, qs):
        ref = qs.spawn_compute(parallelism=2)
        tasks = [Task(work=0.01, done=qs.sim.event()) for _ in range(6)]
        qs.sim.run(until_event=ref.call("cp_submit_many", tasks))
        qs.sim.run(until_event=qs.sim.all_of([t.done for t in tasks]))
        assert ref.proclet.tasks_done == 6


class TestStopAndDrain:
    def test_request_stop_fires_after_inflight_tasks(self, qs):
        ref = qs.spawn_compute(parallelism=1)
        running = submit(qs, ref, Task(work=0.05))
        qs.sim.run(until=0.01)
        stopped = ref.proclet.request_stop()
        assert not stopped.triggered
        qs.sim.run(until_event=stopped)
        assert running.triggered
        assert qs.sim.now == pytest.approx(0.05, rel=0.05)

    def test_stop_idle_proclet_fires_quickly(self, qs):
        ref = qs.spawn_compute(parallelism=2)
        qs.sim.run(until=0.01)  # workers are idle-waiting
        stopped = ref.proclet.request_stop()
        qs.sim.run(until_event=stopped)
        assert qs.sim.now < 0.02

    def test_cp_drain_returns_pending(self, qs):
        ref = qs.spawn_compute(parallelism=1)
        for i in range(5):
            submit(qs, ref, Task(work=1.0, key=i))
        qs.sim.run(until=0.01)
        drained = qs.sim.run(until_event=ref.call("cp_drain"))
        assert [t.key for t in drained] == [1, 2, 3, 4]
        assert ref.proclet.queue_length == 0

    def test_cp_extract_half(self, qs):
        ref = qs.spawn_compute(parallelism=1)
        for i in range(9):
            submit(qs, ref, Task(work=1.0, key=i))
        qs.sim.run(until=0.01)  # key 0 executing; 8 queued
        half = qs.sim.run(until_event=ref.call("cp_extract_half"))
        assert [t.key for t in half] == [5, 6, 7, 8]
        assert ref.proclet.queue_length == 4


class TestStreamingSource:
    def test_source_pull_drives_workers(self, qs):
        class CountingSource:
            def __init__(self, n):
                self.remaining = n
                self.pulled = 0

            def pull(self, ctx):
                yield ctx.cpu(1e-6)
                if self.remaining == 0:
                    return None
                self.remaining -= 1
                self.pulled += 1
                return Task(work=0.005)

        source = CountingSource(10)
        ref = qs.spawn_compute(parallelism=2, source=source)
        qs.sim.run(until=1.0)
        assert source.pulled == 10
        assert ref.proclet.tasks_done == 10
        # workers exited after exhaustion
        assert ref.proclet._live_workers == 0

    def test_priority_starvation_blocks_tasks(self, qs):
        m0 = qs.machines[0]
        hold = m0.cpu.hold(threads=8.0, priority=Priority.HIGH)
        ref = qs.spawn_compute(machine=m0)
        done = submit(qs, ref, Task(work=0.001))
        qs.sim.run(until=0.1)
        assert not done.triggered
        m0.cpu.release(hold)
        qs.sim.run(until_event=done)
