"""Tests for the bin-packing placement planner and its scheduler hookup."""

import pytest

from repro import MachineSpec, Task
from repro.core.scheduler.binpack import (
    Move,
    PackItem,
    pack_quality,
    plan_packing,
)
from repro.units import GiB, MS, MiB

from ..conftest import make_qs


class TestPlanner:
    def test_balanced_placement_is_noop(self):
        items = [PackItem("a", 4.0, "m0"), PackItem("b", 4.0, "m1")]
        caps = {"m0": 8.0, "m1": 8.0}
        assert plan_packing(items, caps) == []

    def test_overloaded_bin_sheds_smallest_items(self):
        items = [
            PackItem("big", 6.0, "m0"),
            PackItem("small1", 2.0, "m0"),
            PackItem("small2", 2.0, "m0"),
        ]
        caps = {"m0": 8.0, "m1": 8.0}
        moves = plan_packing(items, caps, headroom=1.0)
        moved = {m.key for m in moves}
        assert "big" not in moved  # sticky: big claimed its spot first
        assert moved  # something had to move
        assert all(m.dst == "m1" for m in moves)

    def test_capacity_respected_after_plan(self):
        items = [PackItem(f"i{k}", 3.0, "m0") for k in range(4)]
        caps = {"m0": 8.0, "m1": 8.0}
        moves = plan_packing(items, caps, headroom=1.0)
        placement = {it.key: it.current_bin for it in items}
        for m in moves:
            placement[m.key] = m.dst
        load = {"m0": 0.0, "m1": 0.0}
        for it in items:
            load[placement[it.key]] += it.size
        assert all(load[b] <= caps[b] for b in caps)

    def test_fragmented_overflow_stays_put(self):
        """Aggregate fits but items are too chunky: best-effort, no
        exception, no pointless moves."""
        items = [PackItem(f"i{k}", 3.0, "m0") for k in range(5)]
        caps = {"m0": 8.0, "m1": 8.0}
        moves = plan_packing(items, caps, headroom=1.0)
        assert len(moves) == 2  # two fit on m1; the fifth stays put

    def test_unplaced_items_get_assigned(self):
        items = [PackItem("x", 2.0, "nowhere")]
        moves = plan_packing(items, {"m0": 8.0})
        assert moves == [Move(key="x", src="nowhere", dst="m0")]

    def test_infeasible_raises(self):
        with pytest.raises(ValueError):
            plan_packing([PackItem("x", 10.0, "m0")], {"m0": 8.0})

    def test_headroom_validation(self):
        with pytest.raises(ValueError):
            plan_packing([], {"m0": 1.0}, headroom=0.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            PackItem("x", -1.0, "m0")

    def test_headroom_soft_then_hard(self):
        """An item too big for headroom still places at full capacity."""
        items = [PackItem("x", 9.5, "nowhere")]
        moves = plan_packing(items, {"m0": 10.0}, headroom=0.9)
        assert moves[0].dst == "m0"

    def test_pack_quality(self):
        items = [PackItem("a", 4.0, "m0"), PackItem("b", 2.0, "m1")]
        caps = {"m0": 8.0, "m1": 8.0}
        mx, mean = pack_quality(items, caps)
        assert mx == pytest.approx(0.5)
        assert mean == pytest.approx(0.375)


class TestBinpackScheduler:
    def test_binpack_strategy_spreads_memory(self):
        qs = make_qs(machines=[
            MachineSpec(name="m0", cores=8, dram_bytes=2 * GiB),
            MachineSpec(name="m1", cores=8, dram_bytes=2 * GiB),
        ], enable_local_scheduler=False, enable_split_merge=False,
            global_interval=10 * MS, global_strategy="binpack")
        m0 = qs.machines[0]
        shards = [qs.spawn_memory(machine=m0) for _ in range(6)]
        for s in shards:
            qs.run(until_event=s.call("mp_put", 0, 310 * MiB, None))
        # m0 now holds ~1.8 GiB of 2 GiB (over the 0.9 headroom).
        qs.run(until=0.2)
        by_machine = {}
        for s in shards:
            by_machine.setdefault(s.machine.name, []).append(s)
        assert "m1" in by_machine, "binpack should move shards to m1"
        for m in qs.machines:
            assert m.memory.used <= m.memory.capacity * 0.95

    def test_binpack_strategy_config_validation(self):
        from repro import QuicksandConfig

        with pytest.raises(ValueError):
            QuicksandConfig(global_strategy="nonsense")

    def test_binpack_noop_when_fitting(self):
        qs = make_qs(enable_local_scheduler=False,
                     enable_split_merge=False,
                     global_interval=10 * MS,
                     global_strategy="binpack")
        ref = qs.spawn_memory(machine=qs.machines[0])
        qs.run(until_event=ref.call("mp_put", 0, 100 * MiB, None))
        qs.run(until=0.2)
        assert ref.proclet.migrations == 0
