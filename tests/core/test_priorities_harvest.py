"""Three-class priority tests: HIGH latency-critical, NORMAL Quicksand
proclets, LOW harvest work (§2's resource-harvesting comparison)."""

import pytest

from repro import Task
from repro.cluster import Priority

from ..conftest import make_qs


@pytest.fixture
def qs():
    return make_qs(enable_local_scheduler=False,
                   enable_global_scheduler=False,
                   enable_split_merge=False)


class TestThreeClasses:
    def test_strict_ordering_high_normal_low(self, qs):
        m = qs.machines[0]
        high = m.cpu.hold(threads=4.0, priority=Priority.HIGH)
        normal = m.cpu.hold(threads=3.0, priority=Priority.NORMAL)
        low = m.cpu.hold(threads=8.0, priority=Priority.LOW)
        assert high.rate == pytest.approx(4.0)
        assert normal.rate == pytest.approx(3.0)
        assert low.rate == pytest.approx(1.0)  # leftovers only

    def test_low_work_fully_preempted(self, qs):
        m = qs.machines[0]
        low = m.cpu.run(work=1.0, threads=8.0, priority=Priority.LOW)
        assert low.rate == pytest.approx(8.0)
        m.cpu.hold(threads=8.0, priority=Priority.NORMAL)
        assert low.rate == pytest.approx(0.0)

    def test_harvest_work_progresses_only_in_gaps(self, qs):
        """LOW 'harvest' work gets exactly the cycles nobody else wants —
        the §6 'resource harvesting' comparison point."""
        m = qs.machines[0]
        # NORMAL load using 6 of 8 cores.
        m.cpu.hold(threads=6.0, priority=Priority.NORMAL)
        harvest = m.cpu.run(work=1.0, threads=8.0, priority=Priority.LOW)
        assert harvest.rate == pytest.approx(2.0)
        qs.run(until_event=harvest.done)
        assert qs.sim.now == pytest.approx(0.5)

    def test_invocation_priority_propagates(self, qs):
        """A LOW-priority invocation's CPU work runs at LOW."""
        from repro import Proclet

        class W(Proclet):
            def work(self, ctx):
                yield ctx.cpu(0.01)
                return "done"

        m = qs.machines[0]
        ref = qs.spawn(W(), m)
        m.cpu.hold(threads=8.0, priority=Priority.NORMAL)
        ev = qs.runtime.invoke(ref, "work", caller_machine=m,
                               priority=Priority.LOW)
        qs.run(until=0.1)
        assert not ev.triggered  # starved behind NORMAL


class TestGpuProcletMigration:
    def test_gpu_proclet_migrates_between_gpu_machines(self):
        """§5 asks how to migrate resource proclets across GPUs; the
        mechanism here is the generic one — small heap, so it is fast —
        and training continues at the destination."""
        from repro import ClusterSpec, GpuSpec, MachineSpec, Quicksand
        from repro import QuicksandConfig
        from repro.units import GiB, MS

        qs = Quicksand(ClusterSpec(machines=[
            MachineSpec(name="g0", cores=4, dram_bytes=2 * GiB,
                        gpus=GpuSpec(count=4, batch_time=10 * MS)),
            MachineSpec(name="g1", cores=4, dram_bytes=2 * GiB,
                        gpus=GpuSpec(count=4, batch_time=10 * MS)),
        ]), config=QuicksandConfig(enable_local_scheduler=False,
                                   enable_global_scheduler=False,
                                   enable_split_merge=False))
        g0, g1 = qs.machines
        ref = qs.spawn_gpu(machine=g0)
        qs.run(until_event=ref.call("gp_train", "warm"))
        latency = qs.run(until_event=qs.runtime.migrate(ref.proclet, g1))
        assert latency < 1 * MS  # tiny heap -> sub-ms migration
        qs.run(until_event=ref.call("gp_train", "after"))
        assert ref.proclet.batches_trained == 2
        assert g1.gpus.batches_done == 1
