"""Edge-case tests for the Quicksand facade and config switches."""

import pytest

from repro import (
    Cluster,
    MachineSpec,
    MemoryProclet,
    Proclet,
    Quicksand,
    QuicksandConfig,
    ResourceKind,
    symmetric_cluster,
)
from repro.units import GiB, MiB

from ..conftest import make_qs


class TestSpawnEdges:
    def test_hybrid_proclet_places_by_memory(self, qs_quiet):
        class Plain(Proclet):
            pass

        ref = qs_quiet.spawn(Plain())
        assert ref.machine in qs_quiet.machines

    def test_spawn_accepts_prebuilt_cluster(self):
        cluster = Cluster(symmetric_cluster(2, cores=4, dram_bytes=GiB))
        qs = Quicksand(cluster)
        assert qs.cluster is cluster
        assert qs.sim is cluster.sim

    def test_named_spawn(self, qs_quiet):
        ref = qs_quiet.spawn_memory(name="my-shard")
        assert ref.proclet.name == "my-shard"

    def test_resource_kind_flags(self):
        from repro.core.computeproclet import ComputeProclet

        assert MemoryProclet().is_memory
        assert not MemoryProclet().is_compute
        assert ComputeProclet().is_compute
        assert ComputeProclet().kind is ResourceKind.COMPUTE


class TestSchedulerSwitches:
    def test_all_controllers_disabled_runs_clean(self):
        qs = make_qs(enable_local_scheduler=False,
                     enable_global_scheduler=False,
                     enable_split_merge=False)
        assert qs.local_schedulers == []
        assert qs.global_scheduler is None
        assert qs.shard_controller is None
        vec = qs.sharded_vector()
        events = [vec.append(i, 1 * MiB) for i in range(40)]
        qs.run(until_event=qs.sim.all_of(events))
        qs.run(until=qs.sim.now + 0.1)
        assert vec.shard_count == 1  # nothing split it
        assert qs.splits == 0

    def test_local_only(self):
        qs = make_qs(enable_global_scheduler=False)
        assert len(qs.local_schedulers) == 2
        assert qs.global_scheduler is None

    def test_global_runs_periodically(self):
        qs = make_qs(enable_local_scheduler=False,
                     enable_split_merge=False,
                     global_interval=0.01)
        qs.run(until=0.055)
        assert qs.global_scheduler.rounds == 5


class TestSplitMergeEdges:
    def test_split_memory_on_busy_proclet_returns_none(self, qs_quiet):
        qs = qs_quiet
        ref = qs.spawn_memory(machine=qs.machines[0])
        for i in range(8):
            qs.run(until_event=ref.call("mp_put", i, 1 * MiB, None))
        first = qs.split_memory(ref)
        second = qs.split_memory(ref)  # starts while first holds the gate
        r1 = qs.run(until_event=first)
        r2 = qs.run(until_event=second)
        outcomes = [r1, r2]
        assert sum(1 for r in outcomes if r is not None) == 1

    def test_merge_with_self_nonsensical_but_safe(self, qs_quiet):
        qs = qs_quiet
        a = qs.spawn_memory(machine=qs.machines[0])
        qs.run(until_event=a.call("mp_put", 1, 1024, None))
        # merging a proclet into itself: blocked by the gate logic
        result = qs.run(until_event=qs.merge_memory(a, a))
        # Either declined or degenerate-success; the proclet must survive.
        assert a.proclet.object_count >= 1 or result is None

    def test_compute_split_preserves_source_object(self, qs_quiet):
        qs = qs_quiet

        class CountingSource:
            def __init__(self):
                self.pulls = 0

            def pull(self, ctx):
                yield ctx.cpu(1e-6)
                self.pulls += 1
                if self.pulls > 10:
                    return None
                from repro import Task

                return Task(work=0.001)

        src = CountingSource()
        ref = qs.spawn_compute(parallelism=1, source=src)
        new_ref = qs.run(until_event=qs.split_compute(ref))
        assert new_ref is not None
        assert new_ref.proclet.source is src  # shared stream


class TestConfigDefaults:
    def test_frozen(self):
        cfg = QuicksandConfig()
        with pytest.raises(Exception):
            cfg.max_shard_bytes = 1

    def test_ablation_switch_combinations(self):
        for local in (True, False):
            for global_ in (True, False):
                qs = make_qs(enable_local_scheduler=local,
                             enable_global_scheduler=global_)
                qs.run(until=0.01)  # must simply not crash