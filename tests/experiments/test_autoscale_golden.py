"""Golden tests for the shard autoscaler.

Two acceptance bars from the robustness milestone:

* **Compatibility** — with the autoscaler *off* nothing moved: the
  chaos digests below are literals pinned before the autoscaler landed,
  so any change to default-path trajectories (an extra metric counter,
  an RNG draw, a reordered subscriber) fails loudly here.
* **Parity** — the autoscaled Fig. 2 pipeline completes within 1.25x
  of the hand-tuned ShardSizeController run.  The measured gap is ~1.2%
  (pure sampling-reaction latency; both controllers share their size
  predicates in repro.autoscale.policy).
"""

import pytest

from repro.chaos import ChaosConfig, run_chaos
from repro.experiments.autoscale import (
    AUTOSCALE_DATASET,
    AutoscaleRow,
    report,
    run_autoscale_config,
)
from repro.experiments.fig2_imbalance import PAPER_CONFIGS

#: Completion-time ceiling of autoscaled over hand-tuned (the issue's
#: acceptance bound; measured worst ratio across configs is 1.012).
RATIO_CEILING = 1.25

#: sha256 digests of autoscaler-off chaos runs, pinned before the
#: autoscaler was introduced.  These are literals on purpose: they must
#: only ever change with a deliberate, documented trajectory break.
PINNED_OFF_DIGESTS = {
    7: "01f58ee1c87d6d62dce4735169c2d789de9e97a96e352026fccceb59982bdb93",
    42: "af8e8f584a95b7c2e8f7e37779cfec235be27619c6d6f0cf22c6dca44c9935e6",
}


class TestAutoscalerOffCompat:
    """Not enabling the autoscaler is bit-identical to the pre-autoscaler
    tree."""

    @pytest.mark.parametrize("seed", sorted(PINNED_OFF_DIGESTS))
    def test_off_digest_unchanged(self, seed):
        result = run_chaos(ChaosConfig(seed=seed, duration=0.5))
        assert result.digest() == PINNED_OFF_DIGESTS[seed]
        # And the new reshard-ledger counters confirm the two-phase
        # protocol never ran.
        assert result.reshard_splits == 0
        assert result.reshard_merges == 0
        assert result.autoscale_decisions == 0


@pytest.fixture(scope="module")
def parity_row():
    name, machines = PAPER_CONFIGS[1]  # cpu-unbalanced: 2 machines
    return run_autoscale_config(name, machines, AUTOSCALE_DATASET)


class TestFig2Parity:
    def test_ratio_within_ceiling(self, parity_row):
        assert isinstance(parity_row, AutoscaleRow)
        assert parity_row.ratio <= RATIO_CEILING
        assert parity_row.ratio > 0.5  # sanity: nothing degenerate

    def test_autoscaler_actually_worked(self, parity_row):
        """Parity must not come from the autoscaler doing nothing."""
        assert parity_row.autoscale_splits >= 1
        assert parity_row.decisions >= 1
        assert parity_row.final_state == "active"

    def test_split_decisions_comparable(self, parity_row):
        """Shared size policy: both controllers split a similar number
        of times.  Not exact equality — the sampling loop sees a
        vector's tail-seal at a slightly different instant than the
        heap-change hook does — but the same order of magnitude."""
        assert parity_row.legacy_splits >= 1
        lo = 0.5 * parity_row.legacy_splits
        hi = 2.0 * parity_row.legacy_splits + 2
        assert lo <= parity_row.autoscale_splits <= hi

    def test_report_renders(self, parity_row):
        text = report([parity_row])
        assert "ShardAutoscaler" in text
        assert parity_row.name in text


class TestAutoscaleChaosDeterminism:
    def test_autoscale_run_replays_identically(self):
        a = run_chaos(ChaosConfig(seed=11, duration=0.3, autoscale=True))
        b = run_chaos(ChaosConfig(seed=11, duration=0.3, autoscale=True))
        assert a.digest() == b.digest()
        assert a.invariant_checks > 0  # a completed run held every one
