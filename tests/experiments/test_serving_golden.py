"""Golden figure shapes for the serving experiment.

The headline of the paper's §1 pitch, pinned as a regression test: on
the canonical reservation-mismatched tenant population, fungible
Quicksand must deliver at least :data:`GOODPUT_RATIO_FLOOR` (1.3x) the
goodput of the static VM carve-up at equal p99 SLO — measured margins
are ~1.44-1.49 across seeds, so the floor trips on real regressions,
not noise.  Digest equality across ``--jobs`` is the exec-engine
contract CI diffs.
"""

import pytest

from repro.experiments.serving import (
    GOODPUT_RATIO_FLOOR,
    build_specs,
    by_mode,
    cells_digest,
    goodput_ratio,
    report,
    run_serving_exec,
)

GRID_SEEDS = (0, 1)


@pytest.fixture(scope="module")
def grid():
    cells, _report = run_serving_exec(seeds=GRID_SEEDS, jobs=2)
    return cells


class TestHeadlineRatio:
    def test_fungible_beats_static_by_the_pinned_floor(self, grid):
        ratio = goodput_ratio(grid)
        assert ratio >= GOODPUT_RATIO_FLOOR, (
            f"goodput ratio {ratio:.3f} fell below the "
            f"{GOODPUT_RATIO_FLOOR}x golden floor")

    def test_every_seed_clears_the_floor_individually(self, grid):
        split = by_mode(grid)
        static_by_seed = {c["seed"]: c for c in split["static"]}
        for cell in split["fungible"]:
            stat = static_by_seed[cell["seed"]]
            assert cell["goodput"] >= \
                GOODPUT_RATIO_FLOOR * stat["goodput"]

    def test_equal_or_better_tail_at_higher_goodput(self, grid):
        """The win is not bought with latency: the fungible p99 must
        stay at or below the static p99 in every cell pair."""
        split = by_mode(grid)
        static_by_seed = {c["seed"]: c for c in split["static"]}
        for cell in split["fungible"]:
            assert cell["p99"] <= static_by_seed[cell["seed"]]["p99"]

    def test_fungible_runs_hotter(self, grid):
        """Borrowed troughs show up as higher cluster utilization."""
        split = by_mode(grid)
        static_by_seed = {c["seed"]: c for c in split["static"]}
        for cell in split["fungible"]:
            assert cell["utilization"] > \
                static_by_seed[cell["seed"]]["utilization"]


class TestConformance:
    def test_no_cell_starves(self, grid):
        for cell in grid:
            assert cell["starvation_violations"] == []

    def test_only_the_fungible_mode_moves_proclets(self, grid):
        for cell in grid:
            if cell["mode"] == "static":
                assert cell["migrations"] == 0
                assert cell["scale_ups"] == 0
            else:
                assert cell["scale_ups"] + cell["scale_downs"] > 0

    def test_grid_covers_both_modes_per_seed(self, grid):
        assert len(grid) == 2 * len(GRID_SEEDS)
        split = by_mode(grid)
        assert len(split["fungible"]) == len(split["static"])
        for cell in grid:
            assert cell["offered"] > 1000
            assert sum(t["goodput"] > 0 for t in cell["tenants"]) \
                == len(cell["tenants"])

    def test_report_renders_the_verdict(self, grid):
        text = report(grid)
        assert "PASS" in text
        assert "goodput ratio" in text


class TestGridDeterminism:
    def test_serial_and_parallel_digests_match(self):
        serial, s_report = run_serving_exec(seeds=(0,), duration=0.6,
                                            jobs=1)
        parallel, p_report = run_serving_exec(seeds=(0,), duration=0.6,
                                              jobs=2)
        assert cells_digest(serial) == cells_digest(parallel)
        assert s_report.digest() == p_report.digest()

    def test_seed_streams_are_grid_position_independent(self):
        full = {s.name: s.kwargs["seed"]
                for s in build_specs(seeds=(0, 1, 2))}
        subset = {s.name: s.kwargs["seed"]
                  for s in build_specs(seeds=(2,))}
        for name, seed in subset.items():
            assert full[name] == seed

    def test_both_modes_of_a_seed_share_the_workload(self):
        specs = build_specs(seeds=(0,))
        seeds = {s.kwargs["mode"]: s.kwargs["seed"] for s in specs}
        assert seeds["fungible"] == seeds["static"]
