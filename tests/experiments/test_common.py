"""Tests for experiment-harness utilities."""

import pytest

from repro.experiments.common import (
    equilibrium_latency,
    fmt_series,
    fmt_table,
)


class TestFmtTable:
    def test_alignment_and_content(self):
        out = fmt_table(["name", "value"], [("a", 1), ("long-name", 22)])
        lines = out.splitlines()
        assert len(lines) == 4  # header, separator, 2 rows
        assert "name" in lines[0]
        assert set(lines[1]) <= {"-", "+"}
        assert "long-name" in lines[3]
        # columns aligned: all lines same display width
        assert len({len(line) for line in lines}) == 1

    def test_numeric_coercion(self):
        out = fmt_table(["x"], [(1.5,), (None,)])
        assert "1.5" in out and "None" in out


class TestFmtSeries:
    def test_downsamples_long_series(self):
        series = [(i * 0.001, float(i)) for i in range(1000)]
        out = fmt_series(series, max_rows=20)
        assert len(out.splitlines()) == 20

    def test_short_series_fully_shown(self):
        series = [(0.001, 1.0), (0.002, 2.0)]
        assert len(fmt_series(series).splitlines()) == 2

    def test_units_in_output(self):
        out = fmt_series([(0.5, 1.0)], t_unit="s", t_scale=1.0)
        assert "s" in out

    def test_downsampling_keeps_first_and_last_sample(self):
        # Regression: int(i * step) never reached the final index, so
        # long traces printed without their equilibrium tail.
        series = [(i * 0.001, float(i)) for i in range(1000)]
        lines = fmt_series(series, max_rows=20, v_fmt="{:.0f}").splitlines()
        assert len(lines) == 20
        assert lines[0].endswith(" 0")
        assert lines[-1].endswith(" 999")

    def test_downsampled_rows_strictly_increase(self):
        series = [(i * 0.001, float(i)) for i in range(51)]
        lines = fmt_series(series, max_rows=50, v_fmt="{:.0f}").splitlines()
        values = [float(line.split()[-1]) for line in lines]
        assert values == sorted(set(values))
        assert values[-1] == 50.0


class TestEquilibriumLatency:
    def test_immediate_equilibrium(self):
        trace = [(0.010 + 0.001 * i, 8) for i in range(20)]
        lat = equilibrium_latency(trace, toggle_time=0.010, target=8,
                                  hold=0.005)
        assert lat == pytest.approx(0.0, abs=1e-9)

    def test_delayed_equilibrium(self):
        trace = [(0.010, 4), (0.012, 6), (0.014, 8), (0.015, 8),
                 (0.020, 8), (0.025, 8)]
        lat = equilibrium_latency(trace, toggle_time=0.010, target=8,
                                  hold=0.005)
        assert lat == pytest.approx(0.004)

    def test_transient_touch_does_not_count(self):
        """Reaching the target then leaving it resets the clock."""
        trace = [(0.010, 8), (0.011, 4), (0.013, 8), (0.014, 8),
                 (0.020, 8)]
        lat = equilibrium_latency(trace, toggle_time=0.010, target=8,
                                  hold=0.005)
        assert lat == pytest.approx(0.003)

    def test_never_reached(self):
        trace = [(0.010 + 0.001 * i, 4) for i in range(20)]
        assert equilibrium_latency(trace, 0.010, target=8) == float("inf")

    def test_samples_before_toggle_ignored(self):
        trace = [(0.005, 8), (0.009, 8), (0.012, 8), (0.013, 8),
                 (0.020, 8)]
        lat = equilibrium_latency(trace, toggle_time=0.010, target=8,
                                  hold=0.005)
        assert lat == pytest.approx(0.002)
