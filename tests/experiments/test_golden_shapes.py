"""Golden shape tests: the paper's reproduced figures, enforced.

EXPERIMENTS.md's claims about Figs. 1–3 live here as assertions, at
fast scale, so a regression in the *shape* of a result (not just a
crash) fails CI instead of waiting for someone to regenerate and read
the report:

* Fig. 1 — fungible placement sustains ≈1.9x the goodput of static
  placement, on ≈full cluster utilisation, with ≈1 ms migrations.
* Fig. 2 — Quicksand makes imbalanced clusters perform within 1% of a
  balanced baseline of identical aggregate capacity.
* Fig. 3 — the training pool adapts to every GPU up/down toggle and
  returns to equilibrium latency.

The bands are deliberately generous around the measured values (see
EXPERIMENTS.md) — tight enough to catch a broken mechanism, loose
enough to survive benign scheduling-order changes.
"""

import pytest

from repro.apps.dnn import DatasetSpec
from repro.experiments.fig1_filler import Fig1Config, run_fig1
from repro.experiments.fig2_imbalance import run_fig2
from repro.experiments.fig3_gpu_adapt import Fig3Config, run_fig3
from repro.units import MS, MiB


@pytest.fixture(scope="module")
def fig1_pair():
    fungible = run_fig1(Fig1Config(duration=60 * MS, fungible=True, seed=0))
    static = run_fig1(Fig1Config(duration=60 * MS, fungible=False, seed=0))
    return fungible, static


@pytest.fixture(scope="module")
def fig2_rows():
    # 240 images is too coarse for the 1% claim (quantisation noise
    # alone is ~3%); 1200 matches the CLI's reduced scale and converges.
    dataset = DatasetSpec(count=1200, mean_bytes=1 * MiB, mean_cpu=0.1)
    return run_fig2(dataset=dataset, seed=0)


@pytest.fixture(scope="module")
def fig3_result():
    return run_fig3(Fig3Config(duration=0.9, seed=0))


class TestFig1GoldenShape:
    def test_fungible_static_goodput_ratio_near_1_9x(self, fig1_pair):
        fungible, static = fig1_pair
        ratio = fungible.mean_goodput_cores / static.mean_goodput_cores
        # Measured 1.92x (paper: ~1.9x).  Below 1.75 the migration
        # machinery stopped reclaiming the idle machine; above 2.05
        # static placement broke, which is just as wrong.
        assert 1.75 <= ratio <= 2.05, f"fungible/static ratio {ratio:.3f}"

    def test_fungible_run_uses_nearly_the_whole_cluster(self, fig1_pair):
        fungible, static = fig1_pair
        assert fungible.mean_goodput_cores >= 0.90 * fungible.config.cores
        # Static placement is pinned to half the cluster (plus epsilon).
        assert static.mean_goodput_cores <= 0.56 * static.config.cores

    def test_migration_p99_under_a_millisecond(self, fig1_pair):
        fungible, _static = fig1_pair
        assert fungible.migrations > 0
        assert fungible.migration_latency.p99 < 1 * MS

    def test_fungible_actually_migrated(self, fig1_pair):
        fungible, static = fig1_pair
        assert fungible.migrations >= 8
        assert static.migrations == 0


class TestFig2GoldenShape:
    def test_all_configs_within_1pct_of_baseline(self, fig2_rows):
        baseline = next(r for r in fig2_rows if r.name == "baseline")
        for row in fig2_rows:
            overhead = row.time_s / baseline.time_s
            assert overhead <= 1.01, (
                f"{row.name}: {row.time_s:.4f}s is "
                f"{(overhead - 1) * 100:.2f}% over baseline "
                f"{baseline.time_s:.4f}s (claim: <= 1%)")

    def test_every_paper_config_ran(self, fig2_rows):
        assert {r.name for r in fig2_rows} == {
            "baseline", "cpu-unbalanced", "mem-unbalanced",
            "both-unbalanced"}

    def test_imbalance_did_not_speed_things_up(self, fig2_rows):
        # Sanity on the sanity check: an "unbalanced faster than
        # balanced" result means the baseline regressed, not that
        # Quicksand improved.
        baseline = next(r for r in fig2_rows if r.name == "baseline")
        for row in fig2_rows:
            assert row.time_s >= baseline.time_s * 0.999


class TestFig3GoldenShape:
    def test_adapts_to_every_gpu_toggle(self, fig3_result):
        assert fig3_result.toggles, "no GPU capacity toggles happened"
        assert fig3_result.adaptation_success_rate == 1.0

    def test_returns_to_equilibrium_latency(self, fig3_result):
        assert fig3_result.equilibrium_latencies
        assert fig3_result.latency_summary.p90 < 25 * MS

    def test_gpus_stay_busy(self, fig3_result):
        assert fig3_result.gpu_idle_fraction < 0.10
        assert fig3_result.batches_trained > 0
