"""Smoke tests: every experiment report renders a complete summary."""

from repro.apps.dnn import DatasetSpec
from repro.experiments import fig1_filler, fig2_imbalance, fig3_gpu_adapt
from repro.experiments import sweep_burst
from repro.units import MS, MiB


class TestReports:
    def test_fig1_report(self):
        fungible = fig1_filler.run_fig1(
            fig1_filler.Fig1Config(duration=40 * MS))
        static = fig1_filler.run_fig1(
            fig1_filler.Fig1Config(duration=40 * MS, fungible=False))
        out = fig1_filler.report(fungible, static)
        assert "FIG1" in out
        assert "fungible" in out and "static" in out
        assert "goodput" in out
        assert "*" in out  # the plot rendered

    def test_fig2_report(self):
        ds = DatasetSpec(count=120, mean_bytes=1 * MiB, mean_cpu=0.1)
        rows = fig2_imbalance.run_fig2(
            dataset=ds,
            configs=fig2_imbalance.PAPER_CONFIGS[:2],
        )
        out = fig2_imbalance.report(rows)
        assert "FIG2" in out
        assert "baseline" in out
        assert "vs baseline" in out

    def test_fig3_report(self):
        result = fig3_gpu_adapt.run_fig3(
            fig3_gpu_adapt.Fig3Config(duration=0.45))
        out = fig3_gpu_adapt.report(result)
        assert "FIG3" in out
        assert "equilibrium" in out
        assert "GPU idle" in out

    def test_sweep_report(self):
        points = sweep_burst.run_sweep(bursts=[2 * MS, 10 * MS],
                                       periods_per_run=4)
        out = sweep_burst.report(points)
        assert "EXT-SWEEP" in out
        assert "gain" in out

    def test_fig2_row_properties(self):
        ds = DatasetSpec(count=120, mean_bytes=1 * MiB, mean_cpu=0.1)
        row = fig2_imbalance.run_fig2_config(
            "baseline", dict(fig2_imbalance.PAPER_CONFIGS)["baseline"],
            dataset=ds)
        assert row.slowdown_vs_paper_baseline_shape > 0
        assert row.paper_time_s == 26.1
