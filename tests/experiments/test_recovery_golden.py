"""Golden tests for the kill-a-machine-mid-Fig.-2 recovery experiment.

The acceptance bar from the robustness milestone: under CHECKPOINT or
REPLICATE the killed run still completes *every* image with a bounded
completion-time ratio over the unkilled baseline, while the unprotected
run demonstrably loses the victim's data.
"""

import pytest

from repro.experiments.recovery import (
    RecoveryRow,
    report,
    run_recovery_fig2,
)

#: Completion-time ceiling over the unkilled baseline.  Measured ratio
#: is ~1.92 (the 2 s chunk watchdog plus redo work dominates); 3.0
#: leaves headroom without letting recovery regress into uselessness.
RATIO_CEILING = 3.0

KILL_AT = 0.4


@pytest.fixture(scope="module")
def baseline():
    return run_recovery_fig2(policy=None, kill_at=None)


@pytest.fixture(scope="module")
def checkpoint_run():
    return run_recovery_fig2(policy="checkpoint", kill_at=KILL_AT)


@pytest.fixture(scope="module")
def replicate_run():
    return run_recovery_fig2(policy="replicate", kill_at=KILL_AT)


class TestBaseline:
    def test_unkilled_run_completes_everything(self, baseline):
        assert baseline.policy == "baseline"
        assert baseline.killed is None
        assert baseline.images_done == baseline.images_total
        assert baseline.chunks_resubmitted == 0
        assert baseline.recoveries == 0


class TestBoundedSlowdown:
    """The headline acceptance: protected runs survive the kill."""

    def test_checkpoint_completes_all_images(self, checkpoint_run):
        assert checkpoint_run.images_done == checkpoint_run.images_total
        assert checkpoint_run.chunks_abandoned == 0
        assert checkpoint_run.recoveries >= 1
        assert checkpoint_run.failed_recoveries == 0

    def test_checkpoint_ratio_bounded(self, baseline, checkpoint_run):
        ratio = checkpoint_run.completion_time / baseline.completion_time
        assert 1.0 < ratio < RATIO_CEILING

    def test_replicate_completes_all_images(self, replicate_run):
        assert replicate_run.images_done == replicate_run.images_total
        assert replicate_run.chunks_abandoned == 0
        assert replicate_run.recoveries >= 1

    def test_replicate_ratio_bounded(self, baseline, replicate_run):
        ratio = replicate_run.completion_time / baseline.completion_time
        assert 1.0 < ratio < RATIO_CEILING

    def test_replicate_loses_no_bytes(self, replicate_run):
        assert replicate_run.data_loss_bytes == 0.0
        assert replicate_run.mirror_bytes > 0

    def test_checkpoint_paid_snapshot_traffic(self, checkpoint_run):
        assert checkpoint_run.checkpoint_bytes > 0


class TestUnprotectedLoss:
    """NONE documents what protection buys: the victim's images are
    gone and the watchdog burns its full retry budget finding out."""

    def test_none_loses_the_victims_data(self):
        row = run_recovery_fig2(policy="none", kill_at=KILL_AT)
        assert row.images_lost > 0
        assert row.chunks_abandoned > 0
        # Infrastructure (queue shards, routing index, pool members) is
        # still RESTART-protected — only the *data* stayed unprotected,
        # so nothing was checkpointed or mirrored.
        assert row.checkpoint_bytes == 0.0
        assert row.mirror_bytes == 0.0


class TestDeterminism:
    def test_killed_run_replays_identically(self, checkpoint_run):
        again = run_recovery_fig2(policy="checkpoint", kill_at=KILL_AT)
        assert again == checkpoint_run  # RecoveryRow is frozen/eq

    def test_report_renders(self, baseline, checkpoint_run):
        text = report([baseline, checkpoint_run])
        assert "checkpoint" in text
        assert "ratio" in text


class TestRowShape:
    def test_row_is_frozen(self, baseline):
        assert isinstance(baseline, RecoveryRow)
        with pytest.raises(Exception):
            baseline.policy = "x"
