"""Golden shapes for the cloning experiment: the differential against
the closed-form PS oracle, the headline tail-latency win, and the
serial-vs-parallel digest equality the exec engine guarantees.

The grid here is a reduced cut of the CLI's default (one load, two
clone factors, two seeds) so CI stays fast; the tolerance bands come
from :func:`repro.hedge.tolerance_for`, which widens honestly for the
smaller samples (calibration in docs/cloning.md)."""

import pytest

from repro.experiments.cloning import (
    DIST_EXP,
    DIST_HYPER,
    build_specs,
    cells_digest,
    differential,
    report,
    run_cell,
    run_cloning_exec,
)
from repro.units import MS


@pytest.fixture(scope="module")
def grid():
    cells, _report = run_cloning_exec(loads=(0.5,), clones=(1, 2),
                                      seeds=(0, 1), duration=2.0, jobs=2)
    return cells


class TestOracleDifferential:
    def test_every_cell_inside_the_oracle_band(self, grid):
        divergences = differential(grid)
        assert divergences == [], "\n".join(str(d) for d in divergences)

    def test_grid_covers_both_distributions(self, grid):
        assert len(grid) == 8
        assert {c["dist"] for c in grid} == {DIST_EXP.label,
                                             DIST_HYPER.label}
        assert all(c["requests"] > 1000 for c in grid)
        assert all(c["failed_requests"] == 0 for c in grid)

    def test_report_renders_the_verdict(self, grid):
        text = report(grid)
        assert "all cells within the oracle's band" in text
        assert DIST_HYPER.label in text


class TestTailLatencyShape:
    """The headline: under high-variance service times at moderate
    load, clone-to-2 beats no cloning on mean AND p99."""

    @pytest.fixture(scope="class")
    def pair(self):
        base = run_cell(load=0.5, clone_factor=1, dist=DIST_HYPER,
                        seed=0, duration=4.0)
        cloned = run_cell(load=0.5, clone_factor=2, dist=DIST_HYPER,
                          seed=0, duration=4.0)
        return base, cloned

    def test_clone_to_2_beats_no_clone_p99(self, pair):
        base, cloned = pair
        # Measured ~27 ms vs ~3 ms: require a 2x margin so benign noise
        # cannot flip the verdict, while a broken cancellation path
        # (losers still consuming CPU) trips it immediately.
        assert cloned["p99"] < base["p99"] / 2
        assert cloned["mean"] < base["mean"] / 2

    def test_means_track_the_oracle_ordering(self, pair):
        base, cloned = pair
        assert cloned["predicted"] < base["predicted"]
        for cell in pair:
            err = abs(cell["mean"] - cell["predicted"]) / cell["predicted"]
            assert err <= cell["tolerance"]


class TestGridDeterminism:
    def test_serial_and_parallel_digests_match(self):
        kwargs = dict(loads=(0.3,), clones=(1,), dists=(DIST_EXP,),
                      seeds=(0,), duration=0.5)
        serial, _ = run_cloning_exec(jobs=1, **kwargs)
        parallel, _ = run_cloning_exec(jobs=2, **kwargs)
        assert cells_digest(serial) == cells_digest(parallel)

    def test_high_variance_cells_get_longer_runs(self):
        specs = build_specs(loads=(0.5,), clones=(1, 2), duration=2.0)
        by_name = {s.name: s.kwargs["duration"] for s in specs}
        exp_c1 = by_name[f"cloning.{DIST_EXP.label}.load=0.5.c=1.seed=0"]
        hyp_c1 = by_name[f"cloning.{DIST_HYPER.label}.load=0.5.c=1.seed=0"]
        hyp_c2 = by_name[f"cloning.{DIST_HYPER.label}.load=0.5.c=2.seed=0"]
        assert exp_c1 == 2.0
        # scv 5.5 (c=1) and 2.4 (c=2) both exceed the 2.0 threshold.
        assert hyp_c1 == 8.0 and hyp_c2 == 8.0

    def test_seed_streams_are_grid_position_independent(self):
        # Dropping a grid row must not reseed the surviving cells.
        full = {s.name: s.kwargs["seed"]
                for s in build_specs(loads=(0.3, 0.5), clones=(1, 2))}
        subset = {s.name: s.kwargs["seed"]
                  for s in build_specs(loads=(0.5,), clones=(2,))}
        for name, seed in subset.items():
            assert full[name] == seed
