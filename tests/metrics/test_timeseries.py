"""Unit tests for metric primitives."""

import pytest

from repro.metrics import Counter, Gauge, TimeSeries, merge_series
from repro.metrics import Summary, mean, percentile, stddev


class TestTimeSeries:
    def test_record_and_iterate(self):
        ts = TimeSeries("x")
        ts.record(0.0, 1.0)
        ts.record(1.0, 2.0)
        assert list(ts) == [(0.0, 1.0), (1.0, 2.0)]
        assert len(ts) == 2
        assert ts.last == 2.0

    def test_rejects_time_going_backwards(self):
        ts = TimeSeries("x")
        ts.record(1.0, 0.0)
        with pytest.raises(ValueError):
            ts.record(0.5, 0.0)

    def test_window(self):
        ts = TimeSeries("x")
        for t in range(10):
            ts.record(float(t), float(t))
        w = ts.window(2.0, 5.0)
        assert w.times == [2.0, 3.0, 4.0]

    def test_value_at_step_interpolation(self):
        ts = TimeSeries("x")
        ts.record(1.0, 10.0)
        ts.record(3.0, 20.0)
        assert ts.value_at(0.5, default=-1) == -1
        assert ts.value_at(1.0) == 10.0
        assert ts.value_at(2.9) == 10.0
        assert ts.value_at(3.0) == 20.0
        assert ts.value_at(100.0) == 20.0

    def test_bucket_sums(self):
        ts = TimeSeries("x")
        for t in [0.1, 0.2, 1.5, 2.9]:
            ts.record(t, 1.0)
        buckets = ts.bucket_sums(0.0, 3.0, 1.0)
        assert [v for _, v in buckets] == [2.0, 1.0, 1.0]

    def test_bucket_sums_bad_width(self):
        with pytest.raises(ValueError):
            TimeSeries().bucket_sums(0, 1, 0)

    def test_mean_over_step_function(self):
        ts = TimeSeries("x")
        ts.record(0.0, 0.0)
        ts.record(1.0, 10.0)
        # 0 for [0,1), 10 for [1,2) -> mean 5
        assert ts.mean_over(0.0, 2.0) == pytest.approx(5.0)

    def test_mean_over_empty_interval(self):
        assert TimeSeries().mean_over(1.0, 1.0) == 0.0

    def test_merge_series(self):
        a, b = TimeSeries("a"), TimeSeries("b")
        a.record(0.0, 1)
        a.record(2.0, 1)
        b.record(1.0, 2)
        m = merge_series([a, b], "m")
        assert m.times == [0.0, 1.0, 2.0]


class TestCounter:
    def test_totals(self):
        c = Counter("c")
        c.add(0.0)
        c.add(1.0, 2.5)
        assert c.total == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().add(0.0, -1)

    def test_rate_over(self):
        c = Counter("c")
        for t in range(10):
            c.add(float(t), 2.0)
        assert c.rate_over(0.0, 10.0) == pytest.approx(2.0)

    def test_no_history_rate_raises(self):
        c = Counter("c", keep_history=False)
        c.add(0.0)
        with pytest.raises(ValueError):
            c.rate_over(0, 1)


class TestGauge:
    def test_integral(self):
        g = Gauge("g", initial=1.0, t0=0.0)
        g.set(2.0, 3.0)
        # 1.0 for 2s + 3.0 for 2s = 8
        assert g.integral_over(0.0, 4.0) == pytest.approx(8.0)

    def test_adjust(self):
        g = Gauge("g", initial=5.0)
        g.adjust(1.0, -2.0)
        assert g.level == 3.0

    def test_set_same_value_no_sample(self):
        g = Gauge("g", initial=1.0)
        n = len(g.series)
        g.set(1.0, 1.0)
        assert len(g.series) == n


class TestStats:
    def test_mean_and_stddev(self):
        assert mean([1, 2, 3]) == 2.0
        assert mean([]) == 0.0
        assert stddev([2, 4]) == pytest.approx(1.41421356, rel=1e-6)
        assert stddev([5]) == 0.0

    def test_percentile(self):
        xs = list(range(101))
        assert percentile(xs, 0) == 0
        assert percentile(xs, 50) == 50
        assert percentile(xs, 100) == 100
        assert percentile([1, 2], 50) == pytest.approx(1.5)

    def test_percentile_errors(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_summary(self):
        s = Summary.of([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert "n=4" in str(s)

    def test_summary_empty(self):
        s = Summary.of([])
        assert s.count == 0
