"""Tests for the metrics recorder registry."""

import pytest

from repro.metrics import MetricsRecorder
from repro.sim import Simulator


@pytest.fixture
def rec():
    return MetricsRecorder(Simulator())


class TestRecorder:
    def test_series_lazily_created_and_cached(self, rec):
        a = rec.series("x.y")
        assert rec.series("x.y") is a

    def test_record_appends_at_now(self, rec):
        rec.sim.timeout(2.0)
        rec.sim.run()
        rec.record("lat", 5.0)
        assert list(rec.series("lat")) == [(2.0, 5.0)]

    def test_counter(self, rec):
        rec.count("events")
        rec.count("events", 2.0)
        assert rec.counter("events").total == 3.0

    def test_gauge_initial_at_now(self, rec):
        g = rec.gauge("level", initial=7.0)
        assert g.level == 7.0
        assert rec.gauge("level") is g

    def test_samples_bag(self, rec):
        rec.observe("lats", 0.1)
        rec.observe("lats", 0.2)
        assert rec.samples("lats") == [0.1, 0.2]

    def test_names_and_has(self, rec):
        rec.record("a", 1)
        rec.count("b")
        rec.gauge("c")
        rec.observe("d", 1.0)
        assert rec.names() == ["a", "b", "c", "d"]
        assert rec.has("a") and not rec.has("zz")


class TestRecordExecStats:
    def test_gauges_merged_in_spec_order(self, rec):
        from repro.exec import RunSpec, run_specs
        from repro.exec.tasks import kernel_churn_task

        specs = [RunSpec(kernel_churn_task, {"seed": i, "rounds": 5},
                         name=f"cell.{i}") for i in range(3)]
        report = run_specs(specs, jobs=2)
        stats = rec.record_exec_stats(report)
        assert stats["runs"] == 3
        assert stats["misses"] == 3 and stats["hits"] == 0
        # Kernel gauges hold the spec-order sum of per-run deltas,
        # never a single worker's last write.
        totals = report.kernel_totals()
        assert totals["events"] > 0
        assert rec.gauge("exec.kernel.events").level == totals["events"]
        assert stats["kernel.events"] == totals["events"]
        assert rec.gauge("exec.runs").level == 3

    def test_merge_is_deterministic_across_jobs(self, rec):
        from repro.exec import RunSpec, run_specs
        from repro.exec.tasks import kernel_churn_task

        specs = [RunSpec(kernel_churn_task, {"seed": 7 + i, "rounds": 5},
                         name=f"cell.{i}") for i in range(3)]
        serial = run_specs(specs, jobs=1)
        parallel = run_specs(specs, jobs=2)
        assert serial.kernel_totals() == parallel.kernel_totals()

    def test_custom_prefix(self, rec):
        from repro.exec import RunSpec, run_specs
        from repro.exec.tasks import rng_walk_task

        report = run_specs([RunSpec(rng_walk_task, {"seed": 1})], jobs=1)
        rec.record_exec_stats(report, prefix="sweep")
        assert rec.has("sweep.runs")
        assert rec.has("sweep.kernel.events")
        assert not rec.has("exec.runs")


class TestDashboard:
    def test_snapshot_renders(self):
        from repro.metrics import machine_rows, snapshot
        from repro.units import MiB

        from ..conftest import make_qs

        qs = make_qs(enable_local_scheduler=False,
                     enable_global_scheduler=False,
                     enable_split_merge=False)
        ref = qs.spawn_memory(machine=qs.machines[0])
        qs.run(until_event=ref.call("mp_put", 0, 10 * MiB, None))
        rows = machine_rows(qs)
        assert len(rows) == 2
        assert rows[0]["dram_used"] >= 10 * MiB
        assert rows[0]["kinds"].get("memory") == 1
        out = snapshot(qs)
        assert "m0" in out and "proclets=1" in out
