"""run_specs: ordering, serial/parallel equivalence, cache integration."""

import pytest

from repro.exec import ResultCache, RunSpec, results_digest, run_specs
from repro.exec.engine import KERNEL_KEYS
from repro.exec.tasks import kernel_churn_task, rng_walk_task


def _grid(n=5, steps=16):
    return [RunSpec(rng_walk_task, {"seed": 100 + i, "steps": steps},
                    name=f"grid.{i}") for i in range(n)]


def _boom_task():  # pragma: no cover - body raises immediately
    raise RuntimeError("boom")


class TestOrdering:
    def test_results_in_spec_order(self):
        specs = _grid(6)
        report = run_specs(specs, jobs=1)
        assert [r.index for r in report.results] == list(range(6))
        assert [r.spec.name for r in report.results] == \
            [s.name for s in specs]
        assert [v["seed"] for v in report.values()] == \
            [100 + i for i in range(6)]

    def test_parallel_results_in_spec_order(self):
        specs = _grid(6)
        report = run_specs(specs, jobs=2)
        assert [r.index for r in report.results] == list(range(6))
        assert [v["seed"] for v in report.values()] == \
            [100 + i for i in range(6)]


class TestEquivalence:
    def test_serial_matches_parallel_bit_for_bit(self):
        specs = _grid(5)
        serial = run_specs(specs, jobs=1)
        parallel = run_specs(specs, jobs=2)
        assert serial.values() == parallel.values()
        assert serial.digest() == parallel.digest()

    def test_digest_is_stable_across_executions(self):
        specs = _grid(3)
        assert run_specs(specs, jobs=1).digest() == \
            run_specs(specs, jobs=1).digest()

    def test_digest_sensitive_to_values(self):
        a = run_specs(_grid(3), jobs=1)
        b = run_specs([RunSpec(rng_walk_task, {"seed": 999, "steps": 16})],
                      jobs=1)
        assert a.digest() != b.digest()

    def test_results_digest_order_sensitive(self):
        values = run_specs(_grid(3), jobs=1).values()
        assert results_digest(values) != results_digest(values[::-1])

    def test_sim_task_serial_matches_parallel(self):
        specs = [RunSpec(kernel_churn_task, {"seed": i, "rounds": 6},
                         name=f"churn.{i}") for i in range(3)]
        assert run_specs(specs, jobs=1).digest() == \
            run_specs(specs, jobs=2).digest()


class TestCacheIntegration:
    def test_warm_cache_skips_everything(self, tmp_path):
        specs = _grid(6)
        cache = ResultCache(str(tmp_path / "c"))
        cold = run_specs(specs, jobs=2, cache=cache)
        assert (cold.hits, cold.misses) == (0, 6)
        warm = run_specs(specs, jobs=2, cache=cache)
        assert (warm.hits, warm.misses) == (6, 0)
        assert warm.hit_rate == 1.0
        assert warm.digest() == cold.digest()
        assert all(r.cached for r in warm.results)

    def test_cache_accepts_directory_path(self, tmp_path):
        specs = _grid(3)
        root = str(tmp_path / "by-path")
        run_specs(specs, jobs=1, cache=root)
        warm = run_specs(specs, jobs=1, cache=root)
        assert (warm.hits, warm.misses) == (3, 0)

    def test_partial_warmth_only_runs_misses(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        run_specs(_grid(3), jobs=1, cache=cache)
        report = run_specs(_grid(5), jobs=1, cache=cache)
        assert (report.hits, report.misses) == (3, 2)
        # The mixed run still matches a fully-fresh run of the same grid.
        assert report.digest() == run_specs(_grid(5), jobs=1).digest()

    def test_invalidation_forces_recompute(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        specs = _grid(3)
        run_specs(specs, jobs=1, cache=cache)
        cache.invalidate(specs[1].digest(cache.version))
        report = run_specs(specs, jobs=1, cache=cache)
        assert (report.hits, report.misses) == (2, 1)
        assert not report.results[1].cached

    def test_kernel_counters_zero_for_hits(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        specs = [RunSpec(kernel_churn_task, {"seed": 5, "rounds": 6})]
        cold = run_specs(specs, jobs=1, cache=cache)
        assert cold.kernel_totals()["events"] > 0
        warm = run_specs(specs, jobs=1, cache=cache)
        assert warm.kernel_totals() == {k: 0 for k in KERNEL_KEYS}


class TestFailures:
    def test_serial_exception_propagates(self):
        with pytest.raises(RuntimeError, match="boom"):
            run_specs([RunSpec(_boom_task, {})], jobs=1)

    def test_parallel_exception_propagates(self):
        specs = _grid(2) + [RunSpec(_boom_task, {}, name="boom")]
        with pytest.raises(RuntimeError, match="boom"):
            run_specs(specs, jobs=2)

    def test_failed_run_writes_nothing_to_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        specs = _grid(2) + [RunSpec(_boom_task, {}, name="boom")]
        with pytest.raises(RuntimeError):
            run_specs(specs, jobs=1, cache=cache)
        assert len(cache) == 0


class TestReport:
    def test_summary_mentions_cache_and_kernel(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        specs = [RunSpec(kernel_churn_task, {"seed": 2, "rounds": 6})]
        report = run_specs(specs, jobs=1, cache=cache)
        text = report.summary()
        assert "1 runs" in text and "0 hit / 1 miss" in text
        assert "kernel events=" in text

    def test_wall_time_recorded(self):
        report = run_specs(_grid(2), jobs=1)
        assert report.wall_s > 0
        assert all(r.wall_s >= 0 for r in report.results)
