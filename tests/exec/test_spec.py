"""RunSpec hashing, canonical serialization, and seed derivation."""

from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import RunSpec, canonical, derive_seed
from repro.exec.tasks import rng_walk_task


@dataclass
class _Point:
    x: float
    label: str


class TestCanonical:
    def test_primitives_round_trip_exactly(self):
        assert canonical(0.1) == repr(0.1)
        assert canonical(1) == "1"
        assert canonical("a") == "'a'"
        assert canonical(None) == "None"
        assert canonical(True) == "True"

    def test_dict_key_order_is_irrelevant(self):
        assert canonical({"a": 1, "b": 2}) == canonical({"b": 2, "a": 1})

    def test_list_vs_tuple_distinguished(self):
        assert canonical([1, 2]) != canonical((1, 2))

    def test_dataclass_serializes_by_field(self):
        s = canonical(_Point(x=0.5, label="p"))
        assert "x=0.5" in s and "label='p'" in s and "_Point" in s

    def test_sets_are_order_independent(self):
        assert canonical({3, 1, 2}) == canonical({2, 3, 1})

    def test_float_bit_faithful(self):
        # 0.1 + 0.2 != 0.3: the canonical form must not round it away.
        assert canonical(0.1 + 0.2) != canonical(0.3)

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            canonical(object())


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a.b") == derive_seed(7, "a.b")

    def test_streams_are_independent(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_master_seed_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_matches_randomstreams_idiom(self):
        # Pinned values: changing the derivation silently invalidates
        # every recorded sweep, so it must not drift.
        assert derive_seed(0, "sweep.x") == derive_seed(0, "sweep.x")
        assert 0 <= derive_seed(123, "s") < 2 ** 64


_stream_names = st.text(
    alphabet=st.characters(codec="utf-8", exclude_categories=("Cs",)),
    min_size=1, max_size=40,
)


class TestDeriveSeedProperties:
    """Hypothesis coverage for the stream-seed derivation the cloning
    and sweep grids rely on for order-independent determinism."""

    @settings(max_examples=200, deadline=None)
    @given(master=st.integers(0, 2 ** 32), name=_stream_names)
    def test_stable_and_in_range(self, master, name):
        a = derive_seed(master, name)
        assert a == derive_seed(master, name)
        assert 0 <= a < 2 ** 64

    @settings(max_examples=100, deadline=None)
    @given(master=st.integers(0, 2 ** 32),
           names=st.lists(_stream_names, min_size=2, max_size=30,
                          unique=True))
    def test_distinct_streams_never_collide(self, master, names):
        # 64-bit output over a handful of names: any collision is a
        # derivation bug (truncation, bad mixing), not bad luck.
        seeds = [derive_seed(master, n) for n in names]
        assert len(set(seeds)) == len(names)

    @settings(max_examples=100, deadline=None)
    @given(masters=st.lists(st.integers(0, 2 ** 32), min_size=2,
                            max_size=10, unique=True),
           name=_stream_names)
    def test_distinct_masters_decorrelate_a_stream(self, masters, name):
        seeds = [derive_seed(m, name) for m in masters]
        assert len(set(seeds)) == len(masters)


class TestRunSpecDigest:
    def test_same_spec_same_digest(self):
        a = RunSpec(rng_walk_task, {"seed": 1, "steps": 8}, name="n")
        b = RunSpec(rng_walk_task, {"seed": 1, "steps": 8}, name="n")
        assert a.digest() == b.digest()

    def test_kwargs_change_digest(self):
        a = RunSpec(rng_walk_task, {"seed": 1})
        b = RunSpec(rng_walk_task, {"seed": 2})
        assert a.digest() != b.digest()

    def test_name_is_part_of_identity(self):
        a = RunSpec(rng_walk_task, {"seed": 1}, name="x")
        b = RunSpec(rng_walk_task, {"seed": 1}, name="y")
        assert a.digest() != b.digest()

    def test_version_changes_digest(self):
        spec = RunSpec(rng_walk_task, {"seed": 1})
        assert spec.digest("0.1.0") != spec.digest("0.2.0")

    def test_lambda_rejected_eagerly(self):
        with pytest.raises(TypeError):
            RunSpec(lambda: None, {})

    def test_closure_rejected_eagerly(self):
        def outer():
            def inner():
                return None
            return inner
        with pytest.raises(TypeError):
            RunSpec(outer(), {})

    def test_call_executes(self):
        spec = RunSpec(rng_walk_task, {"seed": 3, "steps": 4})
        assert spec.call()["seed"] == 3
