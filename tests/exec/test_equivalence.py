"""Property test: any grid is --jobs invariant (satellite 3).

Hypothesis draws small random sweep grids and checks that serial and
parallel execution return identical result lists and identical sha256
digests.  Pool spin-up is the dominant cost, so examples are few and
the per-run work is a cheap pure-RNG walk; the simulator-backed
equivalence case lives in ``test_engine.py``.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exec import RunSpec, derive_seed, results_digest, run_specs
from repro.exec.tasks import rng_walk_task

grids = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2 ** 31 - 1),
              st.integers(min_value=1, max_value=24)),
    min_size=1, max_size=6, unique=True,
)


def _specs(grid):
    return [RunSpec(rng_walk_task,
                    {"seed": derive_seed(seed, f"prop.{i}"), "steps": steps},
                    name=f"prop.{i}")
            for i, (seed, steps) in enumerate(grid)]


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(grid=grids)
def test_serial_and_parallel_grids_are_identical(grid):
    specs = _specs(grid)
    serial = run_specs(specs, jobs=1)
    parallel = run_specs(specs, jobs=2)
    assert serial.values() == parallel.values()
    assert serial.digest() == parallel.digest()
    assert results_digest(serial.values()) == \
        results_digest(parallel.values())


@settings(max_examples=20, deadline=None)
@given(grid=grids)
def test_digest_depends_only_on_values(grid):
    """Re-running the same grid serially twice is digest-stable."""
    specs = _specs(grid)
    assert run_specs(specs, jobs=1).digest() == \
        run_specs(specs, jobs=1).digest()
