"""Hit / miss / invalidation behaviour of the on-disk result cache."""

import os
import pickle

from repro.exec import ResultCache, RunSpec
from repro.exec.tasks import rng_walk_task


def _cache(tmp_path, version="0.1.0"):
    return ResultCache(str(tmp_path / "cache"), version=version)


class TestHitMiss:
    def test_cold_lookup_is_miss(self, tmp_path):
        cache = _cache(tmp_path)
        hit, value = cache.lookup("ab" * 32)
        assert not hit and value is None
        assert cache.stats() == {"hits": 0, "misses": 1, "entries": 0}

    def test_put_then_get_round_trips(self, tmp_path):
        cache = _cache(tmp_path)
        key = "cd" * 32
        cache.put(key, {"x": [1, 2.5], "y": "ok"})
        hit, value = cache.lookup(key)
        assert hit and value == {"x": [1, 2.5], "y": "ok"}
        assert key in cache
        assert len(cache) == 1

    def test_get_returns_default_on_miss(self, tmp_path):
        cache = _cache(tmp_path)
        assert cache.get("00" * 32, default="fallback") == "fallback"

    def test_sharded_layout(self, tmp_path):
        cache = _cache(tmp_path)
        key = "f0" + "a" * 62
        path = cache.put(key, 1)
        assert path == os.path.join(cache.root, "f0", key + ".pkl")
        assert os.path.exists(path)

    def test_no_stray_temp_files_after_put(self, tmp_path):
        cache = _cache(tmp_path)
        key = "ee" * 32
        cache.put(key, list(range(100)))
        shard = os.path.dirname(cache.path_for(key))
        assert [f for f in os.listdir(shard) if f.startswith(".tmp-")] == []


class TestInvalidation:
    def test_version_mismatch_is_miss(self, tmp_path):
        old = _cache(tmp_path, version="0.1.0")
        key = "11" * 32
        old.put(key, "stale")
        new = ResultCache(old.root, version="0.2.0")
        hit, _ = new.lookup(key)
        assert not hit
        # A fresh put under the new version overwrites the stale entry.
        new.put(key, "fresh")
        assert new.get(key) == "fresh"

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = _cache(tmp_path)
        key = "22" * 32
        cache.put(key, "good")
        with open(cache.path_for(key), "wb") as fh:
            fh.write(b"\x00not a pickle")
        hit, _ = cache.lookup(key)
        assert not hit

    def test_key_mismatch_inside_payload_is_miss(self, tmp_path):
        # An entry copied/renamed to the wrong address must not serve.
        cache = _cache(tmp_path)
        key, other = "33" * 32, "44" * 32
        cache.put(key, "value")
        os.makedirs(os.path.dirname(cache.path_for(other)), exist_ok=True)
        os.rename(cache.path_for(key), cache.path_for(other))
        hit, _ = cache.lookup(other)
        assert not hit

    def test_truncated_entry_is_miss(self, tmp_path):
        cache = _cache(tmp_path)
        key = "55" * 32
        cache.put(key, list(range(1000)))
        path = cache.path_for(key)
        with open(path, "rb") as fh:
            data = fh.read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) // 2])
        hit, _ = cache.lookup(key)
        assert not hit

    def test_non_dict_payload_is_miss(self, tmp_path):
        cache = _cache(tmp_path)
        key = "66" * 32
        path = cache.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as fh:
            pickle.dump(["raw", "list"], fh)
        hit, _ = cache.lookup(key)
        assert not hit

    def test_invalidate_drops_one_entry(self, tmp_path):
        cache = _cache(tmp_path)
        a, b = "77" * 32, "88" * 32
        cache.put(a, 1)
        cache.put(b, 2)
        assert cache.invalidate(a)
        assert not cache.invalidate(a)  # already gone
        assert a not in cache and b in cache

    def test_clear_empties_cache(self, tmp_path):
        cache = _cache(tmp_path)
        for i in range(5):
            cache.put(f"{i:02d}" * 32, i)
        assert cache.clear() == 5
        assert len(cache) == 0
        assert cache.clear() == 0


class TestSpecAddressing:
    def test_spec_digest_addresses_cache(self, tmp_path):
        cache = _cache(tmp_path)
        spec = RunSpec(rng_walk_task, {"seed": 9, "steps": 8})
        key = spec.digest(cache.version)
        cache.put(key, spec.call())
        assert cache.get(key) == spec.call()

    def test_different_kwargs_never_collide(self, tmp_path):
        cache = _cache(tmp_path)
        a = RunSpec(rng_walk_task, {"seed": 1, "steps": 8})
        b = RunSpec(rng_walk_task, {"seed": 2, "steps": 8})
        cache.put(a.digest(cache.version), "A")
        cache.put(b.digest(cache.version), "B")
        assert cache.get(a.digest(cache.version)) == "A"
        assert cache.get(b.digest(cache.version)) == "B"
