"""Cache robustness at the ``run_specs`` level.

:mod:`tests.exec.test_cache` proves a corrupt or version-skewed entry
is a *miss* at the :class:`ResultCache` layer; these tests prove the
engine built on top behaves: a poisoned cache never crashes or changes
a grid's results — the damaged points silently re-run and the repaired
entries serve the next sweep.  The report digest must be a function of
the result values alone, never of which cells happened to hit.
"""

import os

from repro.exec import ResultCache, RunSpec, run_specs
from repro.exec.tasks import rng_walk_task


def _grid(n=4):
    return [RunSpec(rng_walk_task, {"seed": s, "steps": 32},
                    name=f"walk.{s}") for s in range(n)]


def _cache(tmp_path, version="1"):
    return ResultCache(str(tmp_path / "cache"), version=version)


def _corrupt(cache, spec, mode):
    path = cache.path_for(spec.digest(cache.version))
    if mode == "truncate":
        with open(path, "rb") as fh:
            data = fh.read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) // 2])
    elif mode == "garbage":
        with open(path, "wb") as fh:
            fh.write(b"\x00garbage, not a pickle")
    else:
        raise ValueError(mode)
    return path


class TestCorruptionRecovery:
    def test_truncated_entry_reruns_and_heals(self, tmp_path):
        specs = _grid()
        cache = _cache(tmp_path)
        first = run_specs(specs, cache=cache)
        assert (first.hits, first.misses) == (0, len(specs))

        _corrupt(cache, specs[1], "truncate")
        again = run_specs(specs, cache=cache)
        assert (again.hits, again.misses) == (len(specs) - 1, 1)
        assert again.values() == first.values()
        # The re-run overwrote the damaged entry: next sweep is pure hits.
        healed = run_specs(specs, cache=cache)
        assert (healed.hits, healed.misses) == (len(specs), 0)

    def test_garbage_entry_reruns_not_crashes(self, tmp_path):
        specs = _grid()
        cache = _cache(tmp_path)
        first = run_specs(specs, cache=cache)
        _corrupt(cache, specs[0], "garbage")
        again = run_specs(specs, cache=cache)
        assert again.values() == first.values()
        assert again.misses == 1

    def test_every_entry_corrupt_still_completes(self, tmp_path):
        specs = _grid()
        cache = _cache(tmp_path)
        first = run_specs(specs, cache=cache)
        for spec in specs:
            _corrupt(cache, spec, "truncate")
        again = run_specs(specs, cache=cache)
        assert (again.hits, again.misses) == (0, len(specs))
        assert again.values() == first.values()


class TestVersionSkew:
    def test_stale_version_header_is_miss_not_crash(self, tmp_path):
        specs = _grid()
        old = _cache(tmp_path, version="1")
        first = run_specs(specs, cache=old)
        # Same root, new code version: every old entry is skew, the
        # grid re-runs cleanly, and both versions' entries coexist
        # (digests include the version, so addresses differ too).
        new = ResultCache(old.root, version="2")
        again = run_specs(specs, cache=new)
        assert (again.hits, again.misses) == (0, len(specs))
        assert again.values() == first.values()
        warm = run_specs(specs, cache=new)
        assert (warm.hits, warm.misses) == (len(specs), 0)

    def test_forged_stale_entry_at_new_address_is_miss(self, tmp_path):
        """Even an entry sitting at the *new* version's address is
        rejected when its payload header names the old version."""
        specs = _grid(1)
        old = _cache(tmp_path, version="1")
        new = ResultCache(old.root, version="2")
        run_specs(specs, cache=old)
        old_path = old.path_for(specs[0].digest(old.version))
        new_path = new.path_for(specs[0].digest(new.version))
        os.makedirs(os.path.dirname(new_path), exist_ok=True)
        os.rename(old_path, new_path)
        report = run_specs(specs, cache=new)
        assert (report.hits, report.misses) == (0, 1)


class TestDigestInsensitiveToHitMissMix:
    def test_digest_constant_across_cold_warm_and_poisoned(self, tmp_path):
        specs = _grid()
        cache = _cache(tmp_path)
        uncached = run_specs(specs)            # no cache at all
        cold = run_specs(specs, cache=cache)   # all misses
        warm = run_specs(specs, cache=cache)   # all hits
        _corrupt(cache, specs[2], "truncate")
        mixed = run_specs(specs, cache=cache)  # hits + one re-run
        digests = {r.digest() for r in (uncached, cold, warm, mixed)}
        assert len(digests) == 1
        # The mixes really differed — the digest just doesn't care.
        assert [r.cached for r in warm.results] != \
            [r.cached for r in mixed.results]

    def test_digest_constant_across_jobs_with_partial_cache(self, tmp_path):
        specs = _grid(6)
        cache = _cache(tmp_path)
        serial = run_specs(specs, jobs=1, cache=cache)
        for spec in specs[::2]:
            _corrupt(cache, spec, "garbage")
        parallel = run_specs(specs, jobs=4, cache=cache)
        assert parallel.misses == 3
        assert parallel.digest() == serial.digest()
