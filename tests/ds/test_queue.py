"""Tests for the sharded queue: FIFO, blocking pop, burst absorption."""

import pytest

from repro import Proclet
from repro.units import KiB, MiB

from ..conftest import make_qs


@pytest.fixture
def qs():
    return make_qs(max_shard_bytes=1 * MiB, min_shard_bytes=16 * KiB,
                   enable_local_scheduler=False,
                   enable_global_scheduler=False)


class TestBasics:
    def test_push_pop_fifo_single_shard(self, qs):
        q = qs.sharded_queue(name="q", initial_shards=1)
        for i in range(5):
            qs.sim.run(until_event=q.push(i, 1 * KiB))
        assert q.length == 5
        got = [qs.sim.run(until_event=q.pop()) for _ in range(5)]
        assert got == [0, 1, 2, 3, 4]
        assert q.length == 0

    def test_try_pop_empty_returns_none(self, qs):
        q = qs.sharded_queue()
        assert qs.sim.run(until_event=q.try_pop()) is None

    def test_pop_blocks_until_push(self, qs):
        q = qs.sharded_queue()
        popped = q.pop()
        qs.sim.run(until=0.01)
        assert not popped.triggered
        q.push("late", 1 * KiB)
        value = qs.sim.run(until_event=popped)
        assert value == "late"

    def test_queue_memory_accounting(self, qs):
        q = qs.sharded_queue(initial_shards=1)
        qs.sim.run(until_event=q.push("x", 100 * KiB))
        shard = q.shards[0].proclet
        assert shard.heap_bytes == 100 * KiB
        qs.sim.run(until_event=q.pop())
        assert shard.heap_bytes == 0

    def test_multiple_shards_spread(self, qs):
        q = qs.sharded_queue(initial_shards=2)
        assert q.shard_count == 2
        for i in range(10):
            qs.sim.run(until_event=q.push(i, 1 * KiB))
        lengths = [s.proclet.length for s in q.shards]
        assert sum(lengths) == 10
        assert all(n > 0 for n in lengths)  # round-robin used both

    def test_validation(self, qs):
        with pytest.raises(ValueError):
            qs.sharded_queue(initial_shards=0)


class TestProducersConsumers:
    def test_producer_consumer_through_proclets(self, qs):
        q = qs.sharded_queue()

        class Producer(Proclet):
            def produce(self, ctx, queue, n):
                for i in range(n):
                    yield ctx.cpu(1e-5)
                    yield queue.push(i, 10 * KiB, ctx=ctx)

        class Consumer(Proclet):
            def __init__(self):
                super().__init__()
                self.got = []

            def consume(self, ctx, queue, n):
                for _ in range(n):
                    v = yield queue.pop(ctx)
                    self.got.append(v)

        prod = qs.spawn(Producer(), qs.machines[0])
        cons = qs.spawn(Consumer(), qs.machines[1])
        done = cons.call("consume", q, 20)
        prod.call("produce", q, 20)
        qs.sim.run(until_event=done)
        assert sorted(cons.proclet.got) == list(range(20))
        assert q.popped == 20

    def test_producers_prefer_local_shard(self, qs):
        m0, m1 = qs.machines
        q = qs.sharded_queue(initial_shards=2, machines=[m0, m1])

        class Producer(Proclet):
            def produce(self, ctx, queue, n):
                for i in range(n):
                    yield queue.push(i, 1 * KiB, ctx=ctx)

        prod = qs.spawn(Producer(), m0)
        qs.sim.run(until_event=prod.call("produce", q, 10))
        local_shard = next(s for s in q.shards if s.machine is m0)
        assert local_shard.proclet.length == 10


class TestBurstAbsorption:
    def test_oversized_queue_shard_splits(self, qs):
        """§4: the queue absorbs bursts by splitting memory proclets."""
        q = qs.sharded_queue(initial_shards=1)
        events = [q.push(i, 64 * KiB) for i in range(64)]  # 4 MiB burst
        qs.sim.run(until_event=qs.sim.all_of(events))
        qs.sim.run(until=qs.sim.now + 0.2)
        assert q.shard_count > 1
        # no element lost
        got = []
        for _ in range(64):
            got.append(qs.sim.run(until_event=q.pop()))
        assert sorted(got) == list(range(64))

    def test_drained_extra_shards_merge_away(self, qs):
        q = qs.sharded_queue(initial_shards=1)
        events = [q.push(i, 64 * KiB) for i in range(64)]
        qs.sim.run(until_event=qs.sim.all_of(events))
        qs.sim.run(until=qs.sim.now + 0.2)
        assert q.shard_count > 1
        for _ in range(64):
            qs.sim.run(until_event=q.pop())
        qs.sim.run(until=qs.sim.now + 0.5)
        assert q.shard_count == 1  # back to the initial footprint

    def test_concurrent_merges_do_not_orphan_a_shard(self, qs):
        """Two shards merging at once: the second merge's survivor must
        be re-chosen after the overhead wait, because the shard picked
        before the wait may itself have been merged away (regression:
        this left a shard permanently gated and lost its items)."""
        from repro.runtime import ProcletStatus

        # Controller off: this test scripts the two merges itself.
        qs = make_qs(enable_split_merge=False,
                     enable_local_scheduler=False,
                     enable_global_scheduler=False)
        q = qs.sharded_queue(name="q", initial_shards=1)
        q._add_shard()
        q._add_shard()
        q0, q1, q2 = q.shards
        qs.sim.run(until_event=q2.call("qp_push", 1 * KiB, "survive-me"))
        # Merge q0 first (its survivor is q1), then q2 — whose survivor,
        # chosen naively up front, would be the soon-to-be-destroyed q0.
        ev0 = q.merge_shard_by_id(q0.proclet_id)
        ev2 = q.merge_shard_by_id(q2.proclet_id)
        qs.sim.run(until_event=qs.sim.all_of([ev0, ev2]))
        assert q.shard_count == 1
        assert all(s.proclet.status is ProcletStatus.RUNNING
                   for s in q.shards)
        assert qs.sim.run(until_event=q.try_pop()) == "survive-me"
        # The queue must still accept pushes (no shard stuck gated).
        qs.sim.run(until_event=q.push("after", 1 * KiB))
        assert q.length == 1

    def test_destroy(self, qs):
        before = sum(m.memory.used for m in qs.machines)
        q = qs.sharded_queue(initial_shards=2)
        qs.sim.run(until_event=q.push("x", 1 * KiB))
        q.destroy()
        after = sum(m.memory.used for m in qs.machines)
        assert after == pytest.approx(before)
