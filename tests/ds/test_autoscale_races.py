"""Stateful race tests for the two-phase reshard protocol.

Hypothesis interleaves key traffic (puts/reads/deletes) with splits and
merges left *in flight*, machine crashes landing at arbitrary protocol
phases, and time advancement — against a dict oracle with table-based
lost-key bookkeeping:

* a key acked and not provably lost to a crash MUST read back its exact
  oracle value (no lost or double-routed keys across reshard commits
  and aborts);
* a key whose table-routed shard sat on a crashed machine MUST raise
  ``DeadProclet`` (fail-stop, no recovery configured — silent
  resurrection would be a bug too).

The chaos ``InvariantChecker`` is attached for the whole run, so the
reshard-integrity invariants (routable-keys-always, range-map
agreement, no orphaned children) are audited after every simulator
event, including the events between a crash and the protocol rollback.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro import MachineSpec
from repro.chaos import InvariantChecker
from repro.ds.sharding import BOTTOM
from repro.runtime import DeadProclet, ProcletStatus
from repro.units import GiB, KiB

from ..conftest import make_qs

_KEYS = st.sampled_from([f"key{i:02d}" for i in range(30)])


class ReshardRaceMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        machines = [MachineSpec(name=f"m{i}", cores=8,
                                dram_bytes=4 * GiB) for i in range(3)]
        self.qs = make_qs(machines=machines,
                          max_shard_bytes=256 * KiB,
                          min_shard_bytes=32 * KiB,
                          enable_local_scheduler=False,
                          enable_global_scheduler=False,
                          enable_split_merge=False)
        self.checker = InvariantChecker(self.qs.runtime).attach(
            self.qs.sim)
        self.map = self.qs.sharded_map(name="kv")
        self.oracle = {}
        self.lost = set()

    # -- key traffic ---------------------------------------------------------
    @rule(key=_KEYS, value=st.integers(0, 10**6),
          kib=st.integers(1, 64))
    def put(self, key, value, kib):
        ev = self.map.put(key, value, kib * KiB)
        try:
            self.qs.sim.run(until_event=ev)
        except DeadProclet:
            return  # routed to a crashed shard; nothing was acked
        assert key not in self.lost, \
            f"write to {key} succeeded but its range was lost"
        self.oracle[key] = value

    @rule(key=_KEYS)
    def read(self, key):
        ev = self.map.get(key)
        if key in self.lost:
            with pytest.raises(DeadProclet):
                self.qs.sim.run(until_event=ev)
        elif key in self.oracle:
            assert self.qs.sim.run(until_event=ev) == self.oracle[key]
        else:
            # Never acked: absent (KeyError) or its range is down.
            with pytest.raises((KeyError, DeadProclet)):
                self.qs.sim.run(until_event=ev)

    @rule(key=_KEYS)
    def delete(self, key):
        ev = self.map.delete(key)
        try:
            self.qs.sim.run(until_event=ev)
        except DeadProclet:
            return
        except KeyError:
            assert key not in self.oracle or key in self.lost
            return
        assert key not in self.lost, \
            f"delete of {key} succeeded but its range was lost"
        assert key in self.oracle
        del self.oracle[key]

    # -- resharding, left in flight ------------------------------------------
    def _live_shards(self):
        out = []
        for s in self.map.shards:
            p = self.qs.runtime._proclets.get(s.ref.proclet_id)
            if p is not None and p.status is ProcletStatus.RUNNING:
                out.append((s, p))
        return out

    @rule(idx=st.integers(0, 7))
    def start_split(self, idx):
        cands = [(s, p) for s, p in self._live_shards()
                 if p.object_count >= 2]
        if not cands:
            return
        shard, _ = cands[idx % len(cands)]
        self.map.reshard_split_by_id(shard.ref.proclet_id)

    @rule(idx=st.integers(0, 7))
    def start_merge(self, idx):
        if self.map.shard_count < 2:
            return
        live = self._live_shards()
        if not live:
            return
        shard, _ = live[idx % len(live)]
        self.map.reshard_merge_by_id(shard.ref.proclet_id)

    # -- faults ---------------------------------------------------------------
    @rule(mi=st.integers(0, 2))
    def crash_and_restore(self, mi):
        """Fail a machine — possibly mid-protocol — and account which
        acked keys died with it, judging by the authoritative table."""
        machine = self.qs.machines[mi % len(self.qs.machines)]
        for key in self.oracle:
            if key in self.lost:
                continue
            ref = self.map.route(key)
            p = self.qs.runtime._proclets.get(ref.proclet_id)
            if p is None or p.status is not ProcletStatus.RUNNING \
                    or p.machine is machine:
                self.lost.add(key)
        self.qs.runtime.fail_machine(machine)
        # Let in-flight protocol ops observe the failure and roll back,
        # then bring the (empty) machine back: fail-stop, no recovery.
        self.qs.sim.run(until=self.qs.sim.now + 0.0005)
        self.qs.runtime.restore_machine(machine)

    @rule(dt=st.floats(0.001, 0.02))
    def advance(self, dt):
        self.qs.sim.run(until=self.qs.sim.now + dt)

    # -- invariants ------------------------------------------------------------
    @invariant()
    def routing_table_sorted_and_consistent(self):
        if not hasattr(self, "map"):
            return
        assert [s.lo for s in self.map.shards] == self.map._los
        assert self.map.shards[0].lo == BOTTOM

    @invariant()
    def acked_size_agrees(self):
        if not hasattr(self, "oracle"):
            return
        assert len(self.map) == len(self.oracle)


TestReshardRaces = ReshardRaceMachine.TestCase
TestReshardRaces.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None)
