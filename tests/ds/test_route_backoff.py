"""Regression tests for routed-call retry behavior.

A routed call whose shard was lost to a machine failure re-attempts
against the updated table.  Historically every re-attempt fired at the
same virtual instant — a retry *storm* against the routing layer while
nothing could possibly have changed.  ``route_retry_backoff`` spaces
lost-shard retries with seeded exponential backoff; the default of 0
preserves the old (bit-identical) trajectories.
"""

import pytest

from repro.runtime import DeadProclet
from repro.units import KiB, MS

from ..conftest import make_qs


def make_map(**config_kwargs):
    config_kwargs.setdefault("max_shard_bytes", 256 * KiB)
    config_kwargs.setdefault("min_shard_bytes", 32 * KiB)
    config_kwargs.setdefault("enable_local_scheduler", False)
    config_kwargs.setdefault("enable_global_scheduler", False)
    config_kwargs.setdefault("enable_split_merge", False)
    qs = make_qs(**config_kwargs)
    m = qs.sharded_map(name="kv")
    qs.run(until_event=m.put("k", 1, 64 * KiB))
    return qs, m


def kill_shard(qs, m):
    qs.runtime.fail_machine(m.shards[0].ref.machine)


class TestDefaultNoBackoff:
    def test_lost_shard_retries_do_not_advance_time(self):
        """Compatibility: with backoff 0 all retries fire at the same
        instant and no jitter RNG stream is ever created."""
        qs, m = make_map()
        kill_shard(qs, m)
        before = qs.sim.now
        with pytest.raises(DeadProclet):
            qs.run(until_event=m.get("k"))
        assert qs.sim.now == before
        assert "ds.route.backoff" not in qs.sim.random._streams

    def test_shared_retry_budget_is_exact(self):
        """All 8 attempts of the shared budget are spent on the dead
        route, then the last error surfaces."""
        qs, m = make_map()
        kill_shard(qs, m)
        pid = m.shards[0].ref.proclet_id
        routed_before = m.route_counts.get(pid, 0)
        with pytest.raises(DeadProclet):
            qs.run(until_event=m.get("k"))
        assert m.route_counts[pid] - routed_before == 8


class TestExponentialBackoff:
    def test_retries_advance_virtual_time(self):
        qs, m = make_map(route_retry_backoff=1 * MS,
                         route_retry_jitter=0.0)
        kill_shard(qs, m)
        before = qs.sim.now
        with pytest.raises(DeadProclet):
            qs.run(until_event=m.get("k"))
        # 8 failed attempts each back off before the next check:
        # 1 + 2 + ... + 128 ms = 255 ms of real spacing, not a storm.
        assert qs.sim.now - before >= 255 * MS

    def test_budget_unchanged_by_backoff(self):
        qs, m = make_map(route_retry_backoff=1 * MS,
                         route_retry_jitter=0.0)
        kill_shard(qs, m)
        pid = m.shards[0].ref.proclet_id
        with pytest.raises(DeadProclet):
            qs.run(until_event=m.get("k"))
        assert m.route_counts[pid] == 8 + 1  # +1: the original put

    def test_jitter_is_seeded_and_deterministic(self):
        def total_delay():
            qs, m = make_map(route_retry_backoff=1 * MS,
                             route_retry_jitter=0.5)
            kill_shard(qs, m)
            before = qs.sim.now
            with pytest.raises(DeadProclet):
                qs.run(until_event=m.get("k"))
            return qs.sim.now - before

        a, b = total_delay(), total_delay()
        assert a == b  # same seed, same trajectory
        assert a > 255 * MS  # jitter only ever adds delay

    def test_no_retry_storm_under_fan_in(self):
        """Many concurrent callers against a lost shard spread their
        retries over virtual time instead of hammering one instant."""
        qs, m = make_map(route_retry_backoff=1 * MS)
        kill_shard(qs, m)
        pid = m.shards[0].ref.proclet_id
        routed_before = m.route_counts.get(pid, 0)
        events = [m.get("k") for _ in range(20)]
        for ev in events:
            with pytest.raises(DeadProclet):
                qs.run(until_event=ev)
        # Bounded total attempts: exactly the shared budget per caller.
        assert m.route_counts[pid] - routed_before == 20 * 8
        # And they were spread out, not a same-instant storm.
        assert qs.sim.now >= 255 * MS


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"route_retry_backoff": -1.0},
        {"route_retry_jitter": -0.1},
        {"route_retry_multiplier": 0.5},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            make_map(**kwargs)
