"""Tests for the sharded map and set: routing, auto-split, auto-merge."""

import pytest

from repro.units import KiB, MiB

from ..conftest import make_qs


@pytest.fixture
def qs():
    return make_qs(max_shard_bytes=1 * MiB, min_shard_bytes=128 * KiB,
                   enable_local_scheduler=False,
                   enable_global_scheduler=False)


def settle(qs, dt=0.1):
    qs.sim.run(until=qs.sim.now + dt)


class TestMapBasics:
    def test_put_get_roundtrip(self, qs):
        m = qs.sharded_map(name="kv")
        qs.sim.run(until_event=m.put("alice", 30, 1 * KiB))
        assert qs.sim.run(until_event=m.get("alice")) == 30
        assert len(m) == 1

    def test_overwrite_does_not_grow_size(self, qs):
        m = qs.sharded_map()
        qs.sim.run(until_event=m.put("k", 1, 1 * KiB))
        qs.sim.run(until_event=m.put("k", 2, 1 * KiB))
        assert len(m) == 1
        assert qs.sim.run(until_event=m.get("k")) == 2

    def test_delete(self, qs):
        m = qs.sharded_map()
        qs.sim.run(until_event=m.put("k", 1, 1 * KiB))
        qs.sim.run(until_event=m.delete("k"))
        assert len(m) == 0
        with pytest.raises(KeyError):
            qs.sim.run(until_event=m.get("k"))

    def test_contains(self, qs):
        m = qs.sharded_map()
        qs.sim.run(until_event=m.put("k", 1, 100))
        assert qs.sim.run(until_event=m.contains("k")) is True
        assert qs.sim.run(until_event=m.contains("z")) is False

    def test_missing_get_raises(self, qs):
        m = qs.sharded_map()
        with pytest.raises(KeyError):
            qs.sim.run(until_event=m.get("ghost"))


class TestMapSharding:
    def _load(self, qs, m, n, size=32 * KiB):
        events = [m.put(f"key-{i:05d}", i, size) for i in range(n)]
        qs.sim.run(until_event=qs.sim.all_of(events))
        settle(qs)

    def test_ingest_splits_shards(self, qs):
        m = qs.sharded_map()
        self._load(qs, m, 128)  # 4 MiB at 1 MiB cap
        assert m.shard_count >= 3
        # every shard within the band
        for shard in m.shards:
            assert shard.proclet.heap_bytes <= 1.05 * MiB

    def test_all_keys_readable_after_splits(self, qs):
        m = qs.sharded_map()
        self._load(qs, m, 128)
        for i in [0, 17, 63, 100, 127]:
            assert qs.sim.run(until_event=m.get(f"key-{i:05d}")) == i

    def test_range_invariants_hold(self, qs):
        """Every object must live in the shard covering its key."""
        m = qs.sharded_map()
        self._load(qs, m, 128)
        for idx, shard in enumerate(m.shards):
            hi = (m.shards[idx + 1].lo if idx + 1 < len(m.shards)
                  else None)
            for key in shard.proclet.keys:
                from repro.ds.sharding import _Bottom

                if not isinstance(shard.lo, _Bottom):
                    assert key >= shard.lo
                if hi is not None:
                    assert key < hi

    def test_deletions_trigger_merges(self, qs):
        """§3.3: removing many KV pairs merges adjacent shards."""
        m = qs.sharded_map()
        self._load(qs, m, 128)
        shards_before = m.shard_count
        events = [m.delete(f"key-{i:05d}") for i in range(120)]
        qs.sim.run(until_event=qs.sim.all_of(events))
        settle(qs, 0.5)
        assert m.shard_count < shards_before
        # remaining keys intact
        for i in range(120, 128):
            assert qs.sim.run(until_event=m.get(f"key-{i:05d}")) == i

    def test_size_tracking_across_splits(self, qs):
        m = qs.sharded_map()
        self._load(qs, m, 100)
        assert len(m) == 100
        assert m.total_objects == 100


class TestShardedSet:
    def test_add_contains_discard(self, qs):
        s = qs.sharded_set(name="tags")
        qs.sim.run(until_event=s.add("x"))
        qs.sim.run(until_event=s.add("y"))
        assert len(s) == 2
        assert qs.sim.run(until_event=s.contains("x")) is True
        qs.sim.run(until_event=s.discard("x"))
        assert len(s) == 1
        assert qs.sim.run(until_event=s.contains("x")) is False

    def test_set_shards_on_volume(self, qs):
        s = qs.sharded_set()
        events = [s.add(f"item-{i:06d}") for i in range(2000)]
        qs.sim.run(until_event=qs.sim.all_of(events))
        settle(qs)
        assert len(s) == 2000
        assert s.shard_count >= 1

    def test_destroy(self, qs):
        s = qs.sharded_set()
        qs.sim.run(until_event=s.add("x"))
        s.destroy()
