"""Tests for the sharded vector: append, reads, sealing, auto-split."""

import pytest

from repro import MachineSpec
from repro.units import GiB, KiB, MiB

from ..conftest import make_qs


@pytest.fixture
def qs():
    # Small shard cap so sharding behaviour shows with few elements.
    return make_qs(max_shard_bytes=1 * MiB, min_shard_bytes=64 * KiB,
                   enable_local_scheduler=False,
                   enable_global_scheduler=False)


def fill(qs, vec, n, size=64 * KiB):
    events = [vec.append(f"e{i}", size) for i in range(n)]
    qs.sim.run(until_event=qs.sim.all_of(events))
    # Let deferred split/seal work settle before asserting.
    qs.sim.run(until=qs.sim.now + 0.1)


class TestAppendAndRead:
    def test_append_then_get(self, qs):
        vec = qs.sharded_vector(name="v")
        fill(qs, vec, 5)
        assert len(vec) == 5
        for i in range(5):
            assert qs.sim.run(until_event=vec.get(i)) == f"e{i}"

    def test_out_of_range(self, qs):
        vec = qs.sharded_vector()
        fill(qs, vec, 2)
        with pytest.raises(IndexError):
            vec.get(2)
        with pytest.raises(IndexError):
            vec.get(-1)

    def test_put_overwrites(self, qs):
        vec = qs.sharded_vector()
        fill(qs, vec, 3)
        qs.sim.run(until_event=vec.put(1, "changed", 32 * KiB))
        assert qs.sim.run(until_event=vec.get(1)) == "changed"

    def test_total_accounting(self, qs):
        vec = qs.sharded_vector()
        fill(qs, vec, 10, size=10 * KiB)
        assert vec.total_objects == 10
        assert vec.total_bytes == pytest.approx(100 * KiB)


class TestSealingAndSharding:
    def test_tail_seals_into_new_shards(self, qs):
        vec = qs.sharded_vector()
        fill(qs, vec, 64)  # 4 MiB at 1 MiB cap -> >= 4 shards
        assert vec.shard_count >= 4
        # all elements still reachable
        for i in [0, 20, 40, 63]:
            assert qs.sim.run(until_event=vec.get(i)) == f"e{i}"

    def test_sealed_shards_never_exceed_cap_much(self, qs):
        vec = qs.sharded_vector()
        fill(qs, vec, 64)
        for shard in vec.shards[:-1]:
            assert shard.proclet.heap_bytes <= 1.1 * MiB

    def test_shards_spread_across_machines(self):
        qs = make_qs(machines=[
            MachineSpec(name="m0", cores=8, dram_bytes=4 * GiB),
            MachineSpec(name="m1", cores=8, dram_bytes=4 * GiB),
        ], max_shard_bytes=1 * MiB, min_shard_bytes=64 * KiB,
            enable_local_scheduler=False, enable_global_scheduler=False)
        vec = qs.sharded_vector()
        fill(qs, vec, 128)
        names = {m.name for m in vec.shard_machines()}
        assert names == {"m0", "m1"}

    def test_memory_unbalanced_placement_favours_big_machine(self):
        """Fig. 2 Mem-unbalanced: shards land mostly on the 12 GiB node."""
        qs = make_qs(machines=[
            MachineSpec(name="small", cores=8, dram_bytes=1 * GiB),
            MachineSpec(name="big", cores=8, dram_bytes=12 * GiB),
        ], max_shard_bytes=8 * MiB, min_shard_bytes=1 * MiB,
            enable_local_scheduler=False, enable_global_scheduler=False)
        vec = qs.sharded_vector()
        fill(qs, vec, 512, size=64 * KiB)  # 32 MiB
        on_big = sum(1 for m in vec.shard_machines() if m.name == "big")
        assert on_big >= 0.7 * vec.shard_count

    def test_routing_after_splits(self, qs):
        """Force a mid-shard split (put grows an inner element)."""
        vec = qs.sharded_vector(name="v")
        fill(qs, vec, 32)
        # grow element 3 far past cap: inner shard must split, not seal
        qs.sim.run(until_event=vec.put(3, "big", 2 * MiB))
        qs.sim.run(until=qs.sim.now + 0.05)
        for i in [0, 3, 15, 31]:
            expected = "big" if i == 3 else f"e{i}"
            assert qs.sim.run(until_event=vec.get(i)) == expected


class TestReader:
    def test_reader_visits_everything_in_order(self, qs):
        vec = qs.sharded_vector()
        fill(qs, vec, 100, size=16 * KiB)

        from repro import Proclet

        class Scanner(Proclet):
            def __init__(self):
                super().__init__()
                self.seen = []

            def scan(self, ctx, reader):
                while True:
                    batch = yield from reader.next_batch(ctx)
                    if batch is None:
                        return
                    self.seen.extend(k for k, _v in batch)

        scanner = qs.spawn(Scanner(), qs.machines[0])
        reader = vec.reader(0, 100, chunk=7, depth=2)
        qs.sim.run(until_event=scanner.call("scan", reader))
        assert scanner.proclet.seen == list(range(100))
        assert reader.elements_read == 100

    def test_reader_range_subset(self, qs):
        vec = qs.sharded_vector()
        fill(qs, vec, 50, size=16 * KiB)

        from repro import Proclet

        class Scanner(Proclet):
            def __init__(self):
                super().__init__()
                self.seen = []

            def scan(self, ctx, reader):
                while True:
                    batch = yield from reader.next_batch(ctx)
                    if batch is None:
                        return
                    self.seen.extend(k for k, _v in batch)

        scanner = qs.spawn(Scanner(), qs.machines[0])
        qs.sim.run(until_event=scanner.call("scan", vec.reader(10, 20)))
        assert scanner.proclet.seen == list(range(10, 20))

    def test_reader_validation(self, qs):
        vec = qs.sharded_vector()
        fill(qs, vec, 4)
        with pytest.raises(ValueError):
            vec.reader(0, 4, chunk=0)
        with pytest.raises(ValueError):
            vec.reader(0, 4, depth=-1)


class TestDestroy:
    def test_destroy_releases_all_memory(self, qs):
        before = sum(m.memory.used for m in qs.machines)
        vec = qs.sharded_vector()
        fill(qs, vec, 32)
        vec.destroy()
        after = sum(m.memory.used for m in qs.machines)
        assert after == pytest.approx(before)
