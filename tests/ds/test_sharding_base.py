"""Unit tests for the sharding library's routing machinery."""

import pytest

from repro.ds.sharding import BOTTOM, INDEX_ENTRY_BYTES, _Bottom
from repro.units import KiB, MiB

from ..conftest import make_qs


@pytest.fixture
def qs():
    return make_qs(max_shard_bytes=1 * MiB, min_shard_bytes=64 * KiB,
                   enable_local_scheduler=False,
                   enable_global_scheduler=False)


class TestBottomSentinel:
    def test_orders_below_everything(self):
        assert BOTTOM < 0
        assert BOTTOM < ""
        assert BOTTOM < -10**18
        assert not (BOTTOM < BOTTOM)

    def test_equality_and_hash(self):
        assert BOTTOM == _Bottom()
        assert hash(BOTTOM) == hash(_Bottom())
        assert BOTTOM != 0

    def test_repr(self):
        assert repr(BOTTOM) == "-inf"


class TestRouting:
    def _sharded(self, qs, n=48):
        m = qs.sharded_map(name="kv")
        for i in range(n):
            qs.run(until_event=m.put(f"k{i:03d}", i, 64 * KiB))
        qs.run(until=qs.sim.now + 0.1)
        assert m.shard_count > 1
        return m

    def test_route_prefix_and_suffix_keys(self, qs):
        m = self._sharded(qs)
        # Keys below every shard boundary route to the first shard.
        assert m.route("aaaa") is m.shards[0].ref
        # Keys above everything route to the last shard.
        assert m.route("zzzz") is m.shards[-1].ref

    def test_route_boundary_key_goes_right(self, qs):
        m = self._sharded(qs)
        boundary = m.shards[1].lo
        assert m.route(boundary) is m.shards[1].ref

    def test_shard_covering_end_markers(self, qs):
        m = self._sharded(qs)
        _ref, end0 = m.shard_covering("a")
        assert end0 == m.shards[1].lo
        _ref, end_last = m.shard_covering("zzzz")
        assert end_last == float("inf")

    def test_index_proclet_charged_per_shard(self, qs):
        m = self._sharded(qs)
        assert m.index_ref.proclet.heap_bytes == \
            pytest.approx(INDEX_ENTRY_BYTES * m.shard_count)

    def test_destroy_unregisters_everything(self, qs):
        m = self._sharded(qs)
        ids = [s.ref.proclet_id for s in m.shards]
        m.destroy()
        for pid in ids:
            assert pid not in qs.shard_controller._owners

    def test_call_routed_passes_app_errors_through(self, qs):
        m = self._sharded(qs)
        with pytest.raises(KeyError):
            qs.run(until_event=m.get("not-there"))

    def test_los_mirror_invariant_after_churn(self, qs):
        m = self._sharded(qs)
        # delete most keys to force merges, then verify the mirror
        for i in range(40):
            try:
                qs.run(until_event=m.delete(f"k{i:03d}"))
            except KeyError:
                pass
        qs.run(until=qs.sim.now + 0.3)
        assert [s.lo for s in m.shards] == m._los
        assert m.shards[0].lo is BOTTOM or isinstance(m.shards[0].lo,
                                                      _Bottom)


class TestRangeEnforcement:
    def test_ranges_pushed_to_proclets(self, qs):
        m = qs.sharded_map(name="kv")
        for i in range(48):
            qs.run(until_event=m.put(f"k{i:03d}", i, 64 * KiB))
        qs.run(until=qs.sim.now + 0.1)
        for i, shard in enumerate(m.shards):
            p = shard.proclet
            if i == 0:
                assert p.range_lo is None
            else:
                assert p.range_lo == shard.lo
            if i + 1 < len(m.shards):
                assert p.range_hi == m.shards[i + 1].lo
            else:
                assert p.range_hi is None

    def test_stale_direct_call_raises_wrong_shard(self, qs):
        from repro.runtime.errors import WrongShard

        m = qs.sharded_map(name="kv")
        for i in range(48):
            qs.run(until_event=m.put(f"k{i:03d}", i, 64 * KiB))
        qs.run(until=qs.sim.now + 0.1)
        first = m.shards[0].ref
        # Bypass routing: ask the first shard for a key owned by the last.
        with pytest.raises(WrongShard):
            qs.run(until_event=first.call("mp_get", "k047"))
